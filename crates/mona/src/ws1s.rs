//! WS1S: weak monadic second-order logic of one successor.
//!
//! Second-order variables range over *finite* subsets of ℕ; first-order
//! variables over positions in ℕ (encoded as singleton sets, as in MONA).
//! Every variable owns one track of the automaton alphabet; formulas compile
//! bottom-up to [`Dfa`]s; quantification is projection + zero-closure;
//! validity of a sentence is universality of its automaton (equivalently,
//! emptiness of the negation); counter-models fall out of shortest accepting
//! words of the negation.

use crate::dfa::Dfa;
use jahob_util::budget::{Budget, Exhaustion};
use jahob_util::{FxHashMap, Symbol};
use std::fmt;

/// A WS1S formula. First-order (position) variables are written lowercase by
/// convention; they are singleton-constrained at their binder. Free
/// variables in [`decide`] must be declared with their kind.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WsForm {
    True,
    False,
    /// `X ⊆ Y`.
    Sub(Symbol, Symbol),
    /// `X = Y`.
    EqSet(Symbol, Symbol),
    /// `X = Y ∪ Z`.
    EqUnion(Symbol, Symbol, Symbol),
    /// `X = Y ∩ Z`.
    EqInter(Symbol, Symbol, Symbol),
    /// `X = Y ∖ Z`.
    EqDiff(Symbol, Symbol, Symbol),
    /// `X = ∅`.
    Empty(Symbol),
    /// `X` is a singleton.
    Sing(Symbol),
    /// `x ∈ Y` (x first-order).
    Elem(Symbol, Symbol),
    /// `y = x + 1` (both first-order).
    Succ(Symbol, Symbol),
    /// `x < y` (both first-order).
    Less(Symbol, Symbol),
    /// `x = 0` (first-order).
    IsZero(Symbol),
    And(Vec<WsForm>),
    Or(Vec<WsForm>),
    Not(Box<WsForm>),
    Implies(Box<WsForm>, Box<WsForm>),
    Iff(Box<WsForm>, Box<WsForm>),
    /// Second-order existential.
    Ex2(Vec<Symbol>, Box<WsForm>),
    /// Second-order universal.
    All2(Vec<Symbol>, Box<WsForm>),
    /// First-order existential (singleton-constrained).
    Ex1(Vec<Symbol>, Box<WsForm>),
    /// First-order universal.
    All1(Vec<Symbol>, Box<WsForm>),
}

impl WsForm {
    pub fn and(parts: Vec<WsForm>) -> WsForm {
        WsForm::And(parts)
    }

    pub fn or(parts: Vec<WsForm>) -> WsForm {
        WsForm::Or(parts)
    }

    #[allow(clippy::should_implement_trait)]
    pub fn not(f: WsForm) -> WsForm {
        WsForm::Not(Box::new(f))
    }

    pub fn implies(a: WsForm, b: WsForm) -> WsForm {
        WsForm::Implies(Box::new(a), Box::new(b))
    }

    pub fn iff(a: WsForm, b: WsForm) -> WsForm {
        WsForm::Iff(Box::new(a), Box::new(b))
    }

    pub fn ex1(vars: &[&str], body: WsForm) -> WsForm {
        WsForm::Ex1(
            vars.iter().map(|v| Symbol::intern(v)).collect(),
            Box::new(body),
        )
    }

    pub fn all1(vars: &[&str], body: WsForm) -> WsForm {
        WsForm::All1(
            vars.iter().map(|v| Symbol::intern(v)).collect(),
            Box::new(body),
        )
    }

    pub fn ex2(vars: &[&str], body: WsForm) -> WsForm {
        WsForm::Ex2(
            vars.iter().map(|v| Symbol::intern(v)).collect(),
            Box::new(body),
        )
    }

    pub fn all2(vars: &[&str], body: WsForm) -> WsForm {
        WsForm::All2(
            vars.iter().map(|v| Symbol::intern(v)).collect(),
            Box::new(body),
        )
    }

    /// All variables (free and bound).
    fn collect_vars(&self, out: &mut Vec<Symbol>) {
        let push = |s: Symbol, out: &mut Vec<Symbol>| {
            if !out.contains(&s) {
                out.push(s);
            }
        };
        match self {
            WsForm::True | WsForm::False => {}
            WsForm::Sub(a, b)
            | WsForm::EqSet(a, b)
            | WsForm::Elem(a, b)
            | WsForm::Succ(a, b)
            | WsForm::Less(a, b) => {
                push(*a, out);
                push(*b, out);
            }
            WsForm::EqUnion(a, b, c) | WsForm::EqInter(a, b, c) | WsForm::EqDiff(a, b, c) => {
                push(*a, out);
                push(*b, out);
                push(*c, out);
            }
            WsForm::Empty(a) | WsForm::Sing(a) | WsForm::IsZero(a) => push(*a, out),
            WsForm::And(ps) | WsForm::Or(ps) => {
                for p in ps {
                    p.collect_vars(out);
                }
            }
            WsForm::Not(p) => p.collect_vars(out),
            WsForm::Implies(a, b) | WsForm::Iff(a, b) => {
                a.collect_vars(out);
                b.collect_vars(out);
            }
            WsForm::Ex2(vs, p) | WsForm::All2(vs, p) | WsForm::Ex1(vs, p) | WsForm::All1(vs, p) => {
                for v in vs {
                    push(*v, out);
                }
                p.collect_vars(out);
            }
        }
    }

    /// Free variables.
    pub fn free_vars(&self) -> Vec<Symbol> {
        let mut free = Vec::new();
        let mut bound = Vec::new();
        self.free_rec(&mut bound, &mut free);
        free
    }

    fn free_rec(&self, bound: &mut Vec<Symbol>, free: &mut Vec<Symbol>) {
        let check = |s: Symbol, bound: &[Symbol], free: &mut Vec<Symbol>| {
            if !bound.contains(&s) && !free.contains(&s) {
                free.push(s);
            }
        };
        match self {
            WsForm::True | WsForm::False => {}
            WsForm::Sub(a, b)
            | WsForm::EqSet(a, b)
            | WsForm::Elem(a, b)
            | WsForm::Succ(a, b)
            | WsForm::Less(a, b) => {
                check(*a, bound, free);
                check(*b, bound, free);
            }
            WsForm::EqUnion(a, b, c) | WsForm::EqInter(a, b, c) | WsForm::EqDiff(a, b, c) => {
                check(*a, bound, free);
                check(*b, bound, free);
                check(*c, bound, free);
            }
            WsForm::Empty(a) | WsForm::Sing(a) | WsForm::IsZero(a) => check(*a, bound, free),
            WsForm::And(ps) | WsForm::Or(ps) => {
                for p in ps {
                    p.free_rec(bound, free);
                }
            }
            WsForm::Not(p) => p.free_rec(bound, free),
            WsForm::Implies(a, b) | WsForm::Iff(a, b) => {
                a.free_rec(bound, free);
                b.free_rec(bound, free);
            }
            WsForm::Ex2(vs, p) | WsForm::All2(vs, p) | WsForm::Ex1(vs, p) | WsForm::All1(vs, p) => {
                let n = bound.len();
                bound.extend(vs.iter().copied());
                p.free_rec(bound, free);
                bound.truncate(n);
            }
        }
    }
}

/// Outcome of deciding a sentence.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WsVerdict {
    Valid,
    /// A counter-model: each variable's set of positions.
    Invalid(FxHashMap<Symbol, Vec<usize>>),
}

/// Errors from the compiler.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WsError(pub String);

impl fmt::Display for WsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ws1s error: {}", self.0)
    }
}

impl std::error::Error for WsError {}

/// Why a budgeted WS1S decision did not produce an answer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WsFailure {
    /// The formula is outside what the compiler supports (e.g. too many
    /// tracks, free variables in `decide`).
    Fragment(WsError),
    /// The budget ran out mid-compilation.
    Exhausted(Exhaustion),
}

impl fmt::Display for WsFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WsFailure::Fragment(e) => e.fmt(f),
            WsFailure::Exhausted(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for WsFailure {}

/// Hard cap on tracks: alphabet is `2^tracks`.
pub const MAX_TRACKS: usize = 14;

struct Compiler<'b> {
    tracks: FxHashMap<Symbol, usize>,
    num_tracks: usize,
    /// Statistics: largest intermediate automaton (states), for E7.
    pub peak_states: usize,
    /// Whether to minimize after each operation (ablation knob).
    minimize: bool,
    /// Resource governor: every automaton operation charges it, so a
    /// portfolio deadline can stop a blowing-up product or determinization.
    budget: &'b Budget,
}

impl Compiler<'_> {
    fn track(&self, v: Symbol) -> usize {
        *self
            .tracks
            .get(&v)
            .expect("compile_opts_budgeted assigns a track to every collected variable (free and bound) before compiling")
    }

    fn bit(&self, v: Symbol) -> u32 {
        1u32 << self.track(v)
    }

    fn note(&mut self, d: Dfa) -> Result<Dfa, Exhaustion> {
        let d = if self.minimize {
            d.minimize_budgeted(self.budget)?
        } else {
            d
        };
        self.peak_states = self.peak_states.max(d.num_states());
        Ok(d)
    }

    fn compile(&mut self, form: &WsForm) -> Result<Dfa, Exhaustion> {
        self.budget.check()?;
        let k = self.num_tracks;
        Ok(match form {
            WsForm::True => Dfa::all(k),
            WsForm::False => Dfa::none(k),
            WsForm::Sub(x, y) => {
                let (bx, by) = (self.bit(*x), self.bit(*y));
                Dfa::letterwise(k, move |l| (l & bx == 0) || (l & by != 0))
            }
            WsForm::EqSet(x, y) => {
                let (bx, by) = (self.bit(*x), self.bit(*y));
                Dfa::letterwise(k, move |l| (l & bx != 0) == (l & by != 0))
            }
            WsForm::EqUnion(x, y, z) => {
                let (bx, by, bz) = (self.bit(*x), self.bit(*y), self.bit(*z));
                Dfa::letterwise(k, move |l| {
                    (l & bx != 0) == ((l & by != 0) || (l & bz != 0))
                })
            }
            WsForm::EqInter(x, y, z) => {
                let (bx, by, bz) = (self.bit(*x), self.bit(*y), self.bit(*z));
                Dfa::letterwise(k, move |l| {
                    (l & bx != 0) == ((l & by != 0) && (l & bz != 0))
                })
            }
            WsForm::EqDiff(x, y, z) => {
                let (bx, by, bz) = (self.bit(*x), self.bit(*y), self.bit(*z));
                Dfa::letterwise(k, move |l| {
                    (l & bx != 0) == ((l & by != 0) && (l & bz == 0))
                })
            }
            WsForm::Empty(x) => {
                let bx = self.bit(*x);
                Dfa::letterwise(k, move |l| l & bx == 0)
            }
            WsForm::Sing(x) => self.singleton_dfa(*x),
            WsForm::Elem(x, y) => {
                // x ∈ Y with x first-order: Sing(x) ∧ x ⊆ Y.
                let sing = self.singleton_dfa(*x);
                let (bx, by) = (self.bit(*x), self.bit(*y));
                let sub = Dfa::letterwise(k, move |l| (l & bx == 0) || (l & by != 0));
                let d = sing.intersect_budgeted(&sub, self.budget)?;
                self.note(d)?
            }
            WsForm::Succ(x, y) => {
                let (bx, by) = (self.bit(*x), self.bit(*y));
                // States: 0 = before x; 1 = x seen, expecting y now;
                // 2 = both seen (accept); 3 = sink.
                let sigma = 1usize << k;
                let mut trans = vec![vec![3u32; sigma]; 4];
                for l in 0..sigma as u32 {
                    let has_x = l & bx != 0;
                    let has_y = l & by != 0;
                    trans[0][l as usize] = match (has_x, has_y) {
                        (false, false) => 0,
                        (true, false) => 1,
                        _ => 3,
                    };
                    trans[1][l as usize] = if !has_x && has_y { 2 } else { 3 };
                    trans[2][l as usize] = if !has_x && !has_y { 2 } else { 3 };
                    trans[3][l as usize] = 3;
                }
                Dfa {
                    num_tracks: k,
                    trans,
                    accept: vec![false, false, true, false],
                    init: 0,
                }
            }
            WsForm::Less(x, y) => {
                let (bx, by) = (self.bit(*x), self.bit(*y));
                // 0 = before x; 1 = x seen, y pending; 2 = accept; 3 = sink.
                let sigma = 1usize << k;
                let mut trans = vec![vec![3u32; sigma]; 4];
                for l in 0..sigma as u32 {
                    let has_x = l & bx != 0;
                    let has_y = l & by != 0;
                    trans[0][l as usize] = match (has_x, has_y) {
                        (false, false) => 0,
                        (true, false) => 1,
                        _ => 3,
                    };
                    trans[1][l as usize] = match (has_x, has_y) {
                        (false, false) => 1,
                        (false, true) => 2,
                        _ => 3,
                    };
                    trans[2][l as usize] = if !has_x && !has_y { 2 } else { 3 };
                    trans[3][l as usize] = 3;
                }
                Dfa {
                    num_tracks: k,
                    trans,
                    accept: vec![false, false, true, false],
                    init: 0,
                }
            }
            WsForm::IsZero(x) => {
                let bx = self.bit(*x);
                let sigma = 1usize << k;
                let mut trans = vec![vec![2u32; sigma]; 3];
                for l in 0..sigma as u32 {
                    let has_x = l & bx != 0;
                    trans[0][l as usize] = if has_x { 1 } else { 2 };
                    trans[1][l as usize] = if has_x { 2 } else { 1 };
                    trans[2][l as usize] = 2;
                }
                Dfa {
                    num_tracks: k,
                    trans,
                    accept: vec![false, true, false],
                    init: 0,
                }
            }
            WsForm::And(parts) => {
                let mut acc = Dfa::all(k);
                for p in parts {
                    let d = self.compile(p)?;
                    acc = self.note(acc.intersect_budgeted(&d, self.budget)?)?;
                }
                acc
            }
            WsForm::Or(parts) => {
                let mut acc = Dfa::none(k);
                for p in parts {
                    let d = self.compile(p)?;
                    acc = self.note(acc.union_budgeted(&d, self.budget)?)?;
                }
                acc
            }
            WsForm::Not(p) => {
                let d = self.compile(p)?;
                self.note(d.complement())?
            }
            WsForm::Implies(a, b) => {
                let da = self.compile(a)?.complement();
                let db = self.compile(b)?;
                let d = da.union_budgeted(&db, self.budget)?;
                self.note(d)?
            }
            WsForm::Iff(a, b) => {
                let da = self.compile(a)?;
                let db = self.compile(b)?;
                let d = da.product_budgeted(&db, |x, y| x == y, self.budget)?;
                self.note(d)?
            }
            WsForm::Ex2(vs, p) => {
                let mut d = self.compile(p)?;
                for v in vs {
                    let t = self.track(*v);
                    d = self.note(d.project_budgeted(t, self.budget)?.zero_closure())?;
                }
                d
            }
            WsForm::All2(vs, p) => {
                let inner = WsForm::not(WsForm::Ex2(
                    vs.clone(),
                    Box::new(WsForm::not(p.as_ref().clone())),
                ));
                self.compile(&inner)?
            }
            WsForm::Ex1(vs, p) => {
                let mut body = p.as_ref().clone();
                // Conjoin singleton constraints, then project.
                let mut parts = vec![];
                for v in vs {
                    parts.push(WsForm::Sing(*v));
                }
                parts.push(body);
                body = WsForm::And(parts);
                let mut d = self.compile(&body)?;
                for v in vs {
                    let t = self.track(*v);
                    d = self.note(d.project_budgeted(t, self.budget)?.zero_closure())?;
                }
                d
            }
            WsForm::All1(vs, p) => {
                let inner = WsForm::not(WsForm::Ex1(
                    vs.clone(),
                    Box::new(WsForm::not(p.as_ref().clone())),
                ));
                self.compile(&inner)?
            }
        })
    }

    fn singleton_dfa(&self, x: Symbol) -> Dfa {
        let bx = self.bit(x);
        let k = self.num_tracks;
        let sigma = 1usize << k;
        // 0 = none seen; 1 = one seen (accept); 2 = sink.
        let mut trans = vec![vec![2u32; sigma]; 3];
        for l in 0..sigma as u32 {
            let has = l & bx != 0;
            trans[0][l as usize] = if has { 1 } else { 0 };
            trans[1][l as usize] = if has { 2 } else { 1 };
            trans[2][l as usize] = 2;
        }
        Dfa {
            num_tracks: k,
            trans,
            accept: vec![false, true, false],
            init: 0,
        }
    }
}

/// Compile a formula to its automaton. The returned DFA is over one track
/// per *distinct variable name* in the formula (bound names must therefore
/// be distinct from each other and from free names — use fresh names).
/// Returns the automaton and the track assignment.
pub fn compile(form: &WsForm) -> Result<(Dfa, FxHashMap<Symbol, usize>), WsError> {
    compile_opts(form, true).map(|(d, t, _)| (d, t))
}

/// Compile with an option to disable intermediate minimization (the E7
/// ablation). Also returns the peak intermediate automaton size.
pub fn compile_opts(
    form: &WsForm,
    minimize: bool,
) -> Result<(Dfa, FxHashMap<Symbol, usize>, usize), WsError> {
    match compile_opts_budgeted(form, minimize, &Budget::unlimited()) {
        Ok(v) => Ok(v),
        Err(WsFailure::Fragment(e)) => Err(e),
        Err(WsFailure::Exhausted(_)) => unreachable!("unlimited budget"),
    }
}

/// Budgeted [`compile_opts`]: every automaton product, determinization and
/// minimization along the way charges the caller's budget.
pub fn compile_opts_budgeted(
    form: &WsForm,
    minimize: bool,
    budget: &Budget,
) -> Result<(Dfa, FxHashMap<Symbol, usize>, usize), WsFailure> {
    let mut vars = Vec::new();
    form.collect_vars(&mut vars);
    if vars.len() > MAX_TRACKS {
        return Err(WsFailure::Fragment(WsError(format!(
            "{} variables exceed the {MAX_TRACKS}-track limit",
            vars.len()
        ))));
    }
    let tracks: FxHashMap<Symbol, usize> = vars.iter().enumerate().map(|(i, &v)| (v, i)).collect();
    let mut compiler = Compiler {
        tracks: tracks.clone(),
        num_tracks: vars.len(),
        peak_states: 0,
        minimize,
        budget,
    };
    let dfa = compiler.compile(form).map_err(WsFailure::Exhausted)?;
    let peak = compiler.peak_states.max(dfa.num_states());
    let minimized = dfa
        .minimize_budgeted(budget)
        .map_err(WsFailure::Exhausted)?;
    Ok((minimized, tracks, peak))
}

/// Decide a *sentence* (no free variables): valid iff its automaton accepts
/// every word. For an invalid sentence the counter-model assigns the
/// variables of the *outermost universal block*: those stay free in the
/// negated matrix, so their tracks survive in the shortest refuting word
/// (inner quantified tracks are projected away and carry no information).
pub fn decide(form: &WsForm) -> Result<WsVerdict, WsError> {
    match decide_budgeted(form, &Budget::unlimited()) {
        Ok(v) => Ok(v),
        Err(WsFailure::Fragment(e)) => Err(e),
        Err(WsFailure::Exhausted(_)) => unreachable!("unlimited budget"),
    }
}

/// Budgeted [`decide`].
pub fn decide_budgeted(form: &WsForm, budget: &Budget) -> Result<WsVerdict, WsFailure> {
    jahob_util::chaos::boundary("mona.decide", budget).map_err(WsFailure::Exhausted)?;
    let free = form.free_vars();
    if !free.is_empty() {
        return Err(WsFailure::Fragment(WsError(format!(
            "sentence expected; free variables: {free:?}"
        ))));
    }
    // Peel leading universal quantifiers; remember first-order ones so the
    // counter-model search stays singleton-constrained.
    let mut witnesses: Vec<Symbol> = Vec::new();
    let mut sing_constraints: Vec<WsForm> = Vec::new();
    let mut matrix = form.clone();
    loop {
        match matrix {
            WsForm::All2(vs, body) => {
                witnesses.extend(vs.iter().copied());
                matrix = *body;
            }
            WsForm::All1(vs, body) => {
                for v in &vs {
                    sing_constraints.push(WsForm::Sing(*v));
                }
                witnesses.extend(vs.iter().copied());
                matrix = *body;
            }
            other => {
                matrix = other;
                break;
            }
        }
    }
    let mut refutation_parts = vec![WsForm::not(matrix)];
    refutation_parts.extend(sing_constraints);
    let refutation = WsForm::And(refutation_parts);
    let (dfa, tracks, _) = compile_opts_budgeted(&refutation, true, budget)?;
    match dfa.shortest_accepting() {
        None => Ok(WsVerdict::Valid),
        Some(word) => {
            let mut assignment: FxHashMap<Symbol, Vec<usize>> = FxHashMap::default();
            for &v in &witnesses {
                let t = tracks[&v];
                let positions: Vec<usize> = word
                    .iter()
                    .enumerate()
                    .filter(|(_, &l)| l & (1 << t) != 0)
                    .map(|(i, _)| i)
                    .collect();
                assignment.insert(v, positions);
            }
            Ok(WsVerdict::Invalid(assignment))
        }
    }
}

/// Is the formula satisfiable (some assignment to free second-order
/// variables makes it true)? Free variables are existentially closed.
pub fn satisfiable(form: &WsForm) -> Result<bool, WsError> {
    match satisfiable_budgeted(form, &Budget::unlimited()) {
        Ok(v) => Ok(v),
        Err(WsFailure::Fragment(e)) => Err(e),
        Err(WsFailure::Exhausted(_)) => unreachable!("unlimited budget"),
    }
}

/// Budgeted [`satisfiable`].
pub fn satisfiable_budgeted(form: &WsForm, budget: &Budget) -> Result<bool, WsFailure> {
    let closed = WsForm::Ex2(form.free_vars(), Box::new(form.clone()));
    let (dfa, _, _) = compile_opts_budgeted(&closed, true, budget)?;
    Ok(!dfa.is_empty())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(name: &str) -> Symbol {
        Symbol::intern(name)
    }

    fn valid(f: &WsForm) -> bool {
        matches!(decide(f).unwrap(), WsVerdict::Valid)
    }

    #[test]
    fn subset_reflexive_transitive() {
        // ∀X. X ⊆ X.
        let f = WsForm::all2(&["SX"], WsForm::Sub(s("SX"), s("SX")));
        assert!(valid(&f));
        // ∀X,Y,Z. X⊆Y ∧ Y⊆Z → X⊆Z.
        let g = WsForm::all2(
            &["SX", "SY", "SZ"],
            WsForm::implies(
                WsForm::and(vec![
                    WsForm::Sub(s("SX"), s("SY")),
                    WsForm::Sub(s("SY"), s("SZ")),
                ]),
                WsForm::Sub(s("SX"), s("SZ")),
            ),
        );
        assert!(valid(&g));
        // ∀X,Y. X⊆Y → Y⊆X is invalid.
        let h = WsForm::all2(
            &["SX", "SY"],
            WsForm::implies(WsForm::Sub(s("SX"), s("SY")), WsForm::Sub(s("SY"), s("SX"))),
        );
        assert!(!valid(&h));
    }

    #[test]
    fn union_intersection_laws() {
        // ∀X,Y,U. U = X∪Y → X ⊆ U.
        let f = WsForm::all2(
            &["SX", "SY", "SU"],
            WsForm::implies(
                WsForm::EqUnion(s("SU"), s("SX"), s("SY")),
                WsForm::Sub(s("SX"), s("SU")),
            ),
        );
        assert!(valid(&f));
        // ∀X,Y,I. I = X∩Y → I ⊆ X ∧ I ⊆ Y.
        let g = WsForm::all2(
            &["SX", "SY", "SI"],
            WsForm::implies(
                WsForm::EqInter(s("SI"), s("SX"), s("SY")),
                WsForm::and(vec![
                    WsForm::Sub(s("SI"), s("SX")),
                    WsForm::Sub(s("SI"), s("SY")),
                ]),
            ),
        );
        assert!(valid(&g));
        // Distributivity: X∩(Y∪Z) = (X∩Y)∪(X∩Z), phrased with helpers.
        let h = WsForm::all2(
            &["X1", "Y1", "Z1", "U1", "L1", "A1", "B1", "R1"],
            WsForm::implies(
                WsForm::and(vec![
                    WsForm::EqUnion(s("U1"), s("Y1"), s("Z1")),
                    WsForm::EqInter(s("L1"), s("X1"), s("U1")),
                    WsForm::EqInter(s("A1"), s("X1"), s("Y1")),
                    WsForm::EqInter(s("B1"), s("X1"), s("Z1")),
                    WsForm::EqUnion(s("R1"), s("A1"), s("B1")),
                ]),
                WsForm::EqSet(s("L1"), s("R1")),
            ),
        );
        assert!(valid(&h));
    }

    #[test]
    fn existential_witnesses() {
        // ∃X. X = ∅.
        let f = WsForm::ex2(&["SE"], WsForm::Empty(s("SE")));
        assert!(valid(&f));
        // ∃x. x = 0.
        let g = WsForm::ex1(&["p0"], WsForm::IsZero(s("p0")));
        assert!(valid(&g));
        // ∀x. ∃y. y = x + 1 (every position has a successor).
        let h = WsForm::all1(
            &["px"],
            WsForm::ex1(&["py"], WsForm::Succ(s("px"), s("py"))),
        );
        assert!(valid(&h));
        // ∀x. ∃y. x = y + 1 is invalid (0 has no predecessor).
        let i = WsForm::all1(
            &["qx"],
            WsForm::ex1(&["qy"], WsForm::Succ(s("qy"), s("qx"))),
        );
        assert!(!valid(&i));
    }

    #[test]
    fn successor_and_order() {
        // ∀x,y. y = x+1 → x < y.
        let f = WsForm::all1(
            &["sx", "sy"],
            WsForm::implies(
                WsForm::Succ(s("sx"), s("sy")),
                WsForm::Less(s("sx"), s("sy")),
            ),
        );
        assert!(valid(&f));
        // < is transitive.
        let g = WsForm::all1(
            &["ta", "tb", "tc"],
            WsForm::implies(
                WsForm::and(vec![
                    WsForm::Less(s("ta"), s("tb")),
                    WsForm::Less(s("tb"), s("tc")),
                ]),
                WsForm::Less(s("ta"), s("tc")),
            ),
        );
        assert!(valid(&g));
        // < is irreflexive: ∀x. ¬(x < x).
        let h = WsForm::all1(&["ua"], WsForm::not(WsForm::Less(s("ua"), s("ua"))));
        assert!(valid(&h));
        // Totality: ∀x,y. x<y ∨ y<x ∨ (x∈{y} sets equal) — use singleton
        // equality via EqSet.
        let i = WsForm::all1(
            &["va", "vb"],
            WsForm::or(vec![
                WsForm::Less(s("va"), s("vb")),
                WsForm::Less(s("vb"), s("va")),
                WsForm::EqSet(s("va"), s("vb")),
            ]),
        );
        assert!(valid(&i));
    }

    #[test]
    fn least_element_theorem() {
        // Every non-empty finite set has a least element:
        // ∀X. X ≠ ∅ → ∃x. x∈X ∧ ∀y. y∈X → (x<y ∨ x=y).
        let f = WsForm::all2(
            &["LS"],
            WsForm::implies(
                WsForm::not(WsForm::Empty(s("LS"))),
                WsForm::ex1(
                    &["lm"],
                    WsForm::and(vec![
                        WsForm::Elem(s("lm"), s("LS")),
                        WsForm::all1(
                            &["ly"],
                            WsForm::implies(
                                WsForm::Elem(s("ly"), s("LS")),
                                WsForm::or(vec![
                                    WsForm::Less(s("lm"), s("ly")),
                                    WsForm::EqSet(s("lm"), s("ly")),
                                ]),
                            ),
                        ),
                    ]),
                ),
            ),
        );
        assert!(valid(&f));
        // A GREATEST element also exists (sets are finite — this is what
        // makes the logic *weak* MSO).
        let g = WsForm::all2(
            &["GS"],
            WsForm::implies(
                WsForm::not(WsForm::Empty(s("GS"))),
                WsForm::ex1(
                    &["gm"],
                    WsForm::and(vec![
                        WsForm::Elem(s("gm"), s("GS")),
                        WsForm::all1(
                            &["gy"],
                            WsForm::implies(
                                WsForm::Elem(s("gy"), s("GS")),
                                WsForm::or(vec![
                                    WsForm::Less(s("gy"), s("gm")),
                                    WsForm::EqSet(s("gy"), s("gm")),
                                ]),
                            ),
                        ),
                    ]),
                ),
            ),
        );
        assert!(valid(&g));
    }

    #[test]
    fn counter_model_extraction() {
        // ∀X,Y. X ⊆ Y — invalid; the counter-model must witness X ⊄ Y.
        let f = WsForm::all2(&["CX", "CY"], WsForm::Sub(s("CX"), s("CY")));
        match decide(&f).unwrap() {
            WsVerdict::Invalid(_) => {}
            WsVerdict::Valid => panic!("should be invalid"),
        }
        // Satisfiability with free variables and model sanity: X ⊆ Y ∧ X ≠ ∅.
        let g = WsForm::and(vec![
            WsForm::Sub(s("MX"), s("MY")),
            WsForm::not(WsForm::Empty(s("MX"))),
        ]);
        assert!(satisfiable(&g).unwrap());
        // Unsatisfiable: X ⊆ Y ∧ Y = ∅ ∧ X ≠ ∅.
        let h = WsForm::and(vec![
            WsForm::Sub(s("NX"), s("NY")),
            WsForm::Empty(s("NY")),
            WsForm::not(WsForm::Empty(s("NX"))),
        ]);
        assert!(!satisfiable(&h).unwrap());
    }

    #[test]
    fn counter_model_is_genuine() {
        // ∀X. X = ∅ is invalid; counter-model assigns some nonempty X.
        let f = WsForm::all2(&["DX"], WsForm::Empty(s("DX")));
        match decide(&f).unwrap() {
            WsVerdict::Invalid(model) => {
                let xs = model.get(&s("DX")).unwrap();
                assert!(!xs.is_empty(), "counter-model must be nonempty: {model:?}");
            }
            WsVerdict::Valid => panic!("should be invalid"),
        }
    }

    #[test]
    fn second_order_induction_fails_weakly() {
        // In WS1S, a successor-closed set containing 0 is NOT everything —
        // finite sets cannot be successor-closed unless empty. In fact
        // ∀X. (0 ∈ X ∧ ∀x,y. x∈X ∧ y=x+1 → y∈X) → False is VALID (no
        // finite set is successor-closed and inhabited).
        let closed = WsForm::all1(
            &["ix", "iy"],
            WsForm::implies(
                WsForm::and(vec![
                    WsForm::Elem(s("ix"), s("IS")),
                    WsForm::Succ(s("ix"), s("iy")),
                ]),
                WsForm::Elem(s("iy"), s("IS")),
            ),
        );
        let zero_in = WsForm::ex1(
            &["iz"],
            WsForm::and(vec![
                WsForm::IsZero(s("iz")),
                WsForm::Elem(s("iz"), s("IS")),
            ]),
        );
        let f = WsForm::all2(
            &["IS"],
            WsForm::implies(WsForm::and(vec![zero_in, closed]), WsForm::False),
        );
        assert!(valid(&f));
    }

    #[test]
    fn rejects_free_variables_in_decide() {
        let f = WsForm::Sub(s("FX"), s("FY"));
        assert!(decide(&f).is_err());
    }

    #[test]
    fn budget_stops_automaton_blowup() {
        // Same distributivity sentence as above: 8 tracks, several
        // products — plenty of state expansions to charge for.
        let f = WsForm::all2(
            &["X2", "Y2", "Z2", "U2", "L2", "A2", "B2", "R2"],
            WsForm::implies(
                WsForm::and(vec![
                    WsForm::EqUnion(s("U2"), s("Y2"), s("Z2")),
                    WsForm::EqInter(s("L2"), s("X2"), s("U2")),
                    WsForm::EqInter(s("A2"), s("X2"), s("Y2")),
                    WsForm::EqInter(s("B2"), s("X2"), s("Z2")),
                    WsForm::EqUnion(s("R2"), s("A2"), s("B2")),
                ]),
                WsForm::EqSet(s("L2"), s("R2")),
            ),
        );
        let starved = Budget::with_fuel(10);
        assert_eq!(
            decide_budgeted(&f, &starved),
            Err(WsFailure::Exhausted(Exhaustion::Fuel))
        );
        let roomy = Budget::with_fuel(50_000_000);
        assert_eq!(decide_budgeted(&f, &roomy), Ok(WsVerdict::Valid));
    }

    #[test]
    fn minimization_ablation_same_verdicts() {
        let f = WsForm::all2(
            &["AX", "AY"],
            WsForm::implies(
                WsForm::Sub(s("AX"), s("AY")),
                WsForm::ex2(
                    &["AZ"],
                    WsForm::and(vec![WsForm::EqUnion(s("AY"), s("AX"), s("AZ"))]),
                ),
            ),
        );
        let (with_min, _, peak_min) = compile_opts(&f, true).unwrap();
        let (without_min, _, peak_nomin) = compile_opts(&f, false).unwrap();
        assert_eq!(
            with_min.complement().is_empty(),
            without_min.complement().is_empty()
        );
        assert!(
            peak_min <= peak_nomin,
            "minimization must not grow automata"
        );
        // And the formula itself is valid: Y = X ∪ (Y ∖ X).
        assert!(with_min.complement().is_empty());
    }
}
