//! `jahob-mona`: a WS1S decision procedure — the MONA substitute.
//!
//! Jahob used "monadic second-order logic over trees to reason about
//! reachability in linked data structures" via the MONA tool [40]. This
//! crate reimplements the automata-theoretic decision procedure for **WS1S**
//! (weak monadic second-order logic of one successor), which suffices for
//! the *list* backbones every case study in the paper uses: a singly-linked
//! list's `next` field is a function whose graph, under the `tree
//! [List.first, Node.next]` invariant, is a finite word.
//!
//! Architecture (exactly MONA's, minus the BDD-compressed transition
//! representation — we use explicit alphabets, which is fine at the track
//! counts Jahob-style obligations need):
//!
//! * [`dfa`] — deterministic automata over bit-vector alphabets `2^k`
//!   (one track per variable): product, complement, projection (via the NFA
//!   subset construction), minimization (Moore), emptiness, shortest
//!   accepting word.
//! * [`ws1s`] — the logic layer: formulas over second-order variables
//!   (finite sets of naturals) and first-order variables (singletons),
//!   compiled to automata; deciding validity/satisfiability; counter-model
//!   extraction.
//! * [`segments`] — the bridge used by the heap provers: encodings of
//!   list-segment reasoning (reachability along one functional field) as
//!   WS1S sentences, used by E7's benchmark families.

pub mod dfa;
pub mod segments;
pub mod ws1s;

pub use dfa::Dfa;
pub use ws1s::{decide, decide_budgeted, WsFailure, WsForm, WsVerdict};
