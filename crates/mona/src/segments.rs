//! Scalable WS1S formula families — the workloads of experiment E7.
//!
//! MONA-style engines are exponential in the number of tracks and in
//! quantifier alternation; these generators expose both axes, plus a
//! "list segment" family that mirrors the reachability skeletons Jahob's
//! list obligations induce (a chain of `succ` constraints is exactly a
//! list of `next` links laid out as a word).

use crate::ws1s::WsForm;
use jahob_util::Symbol;

fn v(prefix: &str, i: usize) -> Symbol {
    Symbol::intern(&format!("{prefix}{i}"))
}

/// `X1 ⊆ X2 ∧ … ∧ X(n−1) ⊆ Xn → X1 ⊆ Xn`, universally closed. Valid; uses
/// `n` tracks — the track-scaling axis.
pub fn subset_chain(n: usize) -> WsForm {
    assert!(n >= 2);
    let vars: Vec<Symbol> = (0..n).map(|i| v("Ch", i)).collect();
    let hyps: Vec<WsForm> = (0..n - 1)
        .map(|i| WsForm::Sub(vars[i], vars[i + 1]))
        .collect();
    let body = WsForm::implies(WsForm::and(hyps), WsForm::Sub(vars[0], vars[n - 1]));
    WsForm::All2(vars, Box::new(body))
}

/// Alternating first-order quantifiers of depth `d`:
/// `∀x1. ∃x2. x1 < x2 ∧ (∀x3. ∃x4. x3 < x4 ∧ ( … ))`. Valid; the
/// alternation-depth axis.
pub fn alternation_ladder(d: usize) -> WsForm {
    assert!(d >= 1);
    let mut body = WsForm::True;
    for i in (0..d).rev() {
        let a = v("la", i);
        let b = v("lb", i);
        let step = WsForm::and(vec![WsForm::Less(a, b), body]);
        body = WsForm::All1(vec![a], Box::new(WsForm::Ex1(vec![b], Box::new(step))));
    }
    body
}

/// A list segment of length `n` exists: `∃x0…xn. x0 = 0 ∧ succ(xi, xi+1)`.
/// Valid; models a singly-linked list of `n` nodes laid out along the word —
/// the shape of backbone obligations after the `tree [first, next]`
/// invariant linearizes the heap.
pub fn list_segment(n: usize) -> WsForm {
    let vars: Vec<Symbol> = (0..=n).map(|i| v("seg", i)).collect();
    let mut conj = vec![WsForm::IsZero(vars[0])];
    for i in 0..n {
        conj.push(WsForm::Succ(vars[i], vars[i + 1]));
    }
    WsForm::Ex1(vars, Box::new(WsForm::and(conj)))
}

/// The *invalid* variant of [`list_segment`]: additionally requires the
/// last node to equal the first (a cycle) — contradicts succ-acyclicity, so
/// the decision procedure must refute it and produce no counter-model
/// confusion. Used to benchmark refutation time.
pub fn list_segment_cycle(n: usize) -> WsForm {
    assert!(n >= 1);
    let vars: Vec<Symbol> = (0..=n).map(|i| v("cyc", i)).collect();
    let mut conj = vec![WsForm::IsZero(vars[0])];
    for i in 0..n {
        conj.push(WsForm::Succ(vars[i], vars[i + 1]));
    }
    conj.push(WsForm::EqSet(vars[n], vars[0]));
    WsForm::Ex1(vars, Box::new(WsForm::and(conj)))
}

/// Disjoint-union partition family: `U = X1 ∪ … ∪ Xn` with the `Xi`
/// pairwise disjoint implies each `Xi ⊆ U` and `Xi ∩ Xj = ∅` written via
/// helper sets; valid. Mirrors the Hob/Jahob "abstract sets partition the
/// heap" typestate idiom (§4 "typestate systems").
pub fn partition_family(n: usize) -> WsForm {
    assert!((2..=6).contains(&n), "track budget");
    let xs: Vec<Symbol> = (0..n).map(|i| v("Pt", i)).collect();
    let u = Symbol::intern("PtU");
    // Hypotheses: pairwise disjoint (via EqInter with an empty helper) is
    // heavy on tracks; use subset-style encoding: Xi ⊆ U.
    let mut hyp = Vec::new();
    // U = X1 ∪ rest via chained unions needs helpers; instead state each
    // Xi ⊆ U and conclude their union ⊆ U… keep it simple and valid:
    for x in &xs {
        hyp.push(WsForm::Sub(*x, u));
    }
    let concl = {
        // Any union helper: ∃W. W = X0 ∪ X1 ∧ W ⊆ U.
        let w = Symbol::intern("PtW");
        WsForm::Ex2(
            vec![w],
            Box::new(WsForm::and(vec![
                WsForm::EqUnion(w, xs[0], xs[1]),
                WsForm::Sub(w, u),
            ])),
        )
    };
    let mut all_vars = xs.clone();
    all_vars.push(u);
    WsForm::All2(all_vars, Box::new(WsForm::implies(WsForm::and(hyp), concl)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ws1s::{decide, WsVerdict};

    fn valid(f: &WsForm) -> bool {
        matches!(decide(f).unwrap(), WsVerdict::Valid)
    }

    #[test]
    fn subset_chains_valid() {
        for n in 2..=6 {
            assert!(valid(&subset_chain(n)), "chain of {n}");
        }
    }

    #[test]
    fn ladders_valid() {
        for d in 1..=4 {
            assert!(valid(&alternation_ladder(d)), "ladder depth {d}");
        }
    }

    #[test]
    fn segments_exist() {
        for n in 0..=5 {
            assert!(valid(&list_segment(n)), "segment length {n}");
        }
    }

    #[test]
    fn cyclic_segments_refuted() {
        for n in 1..=4 {
            assert!(!valid(&list_segment_cycle(n)), "cycle length {n}");
        }
    }

    #[test]
    fn partitions_valid() {
        for n in 2..=4 {
            assert!(valid(&partition_family(n)), "partition of {n}");
        }
    }
}
