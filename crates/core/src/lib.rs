//! `jahob`: the Jahob analysis system — public API.
//!
//! This crate ties the reproduction together, mirroring the architecture of
//! §2.4: "a verification condition generator that can invoke any one of a
//! number of decision procedures to discharge the proof obligations. By
//! populating Jahob with a variety of decision procedures ... Jahob can
//! effectively deploy very specialized, even unscalable, techniques."
//!
//! * [`dispatcher`] — goal decomposition ("a simple goal decomposition
//!   technique to prove different conjuncts in the goal using different
//!   decision procedures", §3) and the prover portfolio: simplifier, HOL
//!   `auto`, Presburger (Cooper/Omega), BAPA, Nelson–Oppen SMT, the
//!   first-order prover with reachability axioms, and the bounded model
//!   finder (counterexamples + bounded validity).
//! * [`verify`] — the end-to-end pipeline: parse → resolve → generate VCs →
//!   dispatch → report.

pub mod dispatcher;
pub mod verify;

pub use dispatcher::{
    Diagnosis, DispatchConfig, Dispatcher, FailureReason, ProverId, Verdict, VerdictKind,
};
pub use jahob_util::budget::{Budget, Exhaustion, INFINITE_FUEL};
pub use jahob_util::chaos::{Fault, FaultPlan, Lie};
pub use verify::{verify_source, Config, MethodReport, ObligationReport, VerifyReport};
