//! `jahob`: the Jahob analysis system — public API.
//!
//! This crate ties the reproduction together, mirroring the architecture of
//! §2.4: "a verification condition generator that can invoke any one of a
//! number of decision procedures to discharge the proof obligations. By
//! populating Jahob with a variety of decision procedures ... Jahob can
//! effectively deploy very specialized, even unscalable, techniques."
//!
//! * [`dispatcher`] — goal decomposition ("a simple goal decomposition
//!   technique to prove different conjuncts in the goal using different
//!   decision procedures", §3) and the prover portfolio: simplifier, HOL
//!   `auto`, Presburger (Cooper/Omega), BAPA, Nelson–Oppen SMT, the
//!   first-order prover with reachability axioms, and the bounded model
//!   finder (counterexamples + bounded validity).
//! * [`goal_cache`] — the run-wide normalized-goal verdict cache:
//!   alpha-equivalent obligations are dispatched once and every later
//!   occurrence is a constant-time hit, with in-flight deduplication so
//!   parallel workers never race to prove the same goal twice.
//! * [`verify`] — the end-to-end pipeline: parse → resolve → generate VCs →
//!   dispatch → report, fanning methods out across a work-stealing pool
//!   while keeping reports bit-for-bit identical to sequential runs. The
//!   front door is a [`Verifier`] session built via [`Config::builder`];
//!   it owns the event sink and the goal cache across calls, and every
//!   run can emit a deterministic structured event stream
//!   ([`jahob_util::obs`]) plus a JSON report rendered through the
//!   shared [`ReportRender`] switch ([`verify::VerifyReport::to_json`]).
//! * [`service`] — the persistent verification daemon behind
//!   `jahob serve`: one warm [`Verifier`] session shared across a
//!   Unix-domain socket, with a bounded admission queue, typed BUSY
//!   load-shedding, round-robin client fairness, per-request obs
//!   streams, and graceful drain. Verdicts and canonical streams
//!   through the daemon are bit-for-bit identical to one-shot runs.
//! * [`cli`] — the shared front-door argument parser and exit-code
//!   ladder used by the `jahob` binary and the `verify_file` example.
//! * [`worker`] — out-of-process prover execution: the wire codec for
//!   shipping obligations to supervised worker children, the child-side
//!   entry point ([`worker_main`]) behind a hidden `worker` CLI mode,
//!   and the parent-side [`ProcessBackend`] the dispatcher consults when
//!   the session was built with [`Isolation::Process`]. Hung provers are
//!   SIGKILLed at a hard deadline, memory is capped per child, and
//!   crash-looping lanes quarantine with graceful in-process fallback —
//!   verdicts are bit-for-bit identical either way.

pub mod adaptive;
pub mod cli;
pub mod dispatcher;
pub mod goal_cache;
pub mod service;
pub mod verify;
pub mod worker;

pub use adaptive::{goal_class, AdaptiveStats};
pub use dispatcher::{
    Diagnosis, DispatchConfig, Dispatcher, FailureReason, ProverId, Verdict, VerdictKind,
};
pub use goal_cache::{normalize, GoalCache, NormalGoal};
pub use jahob_util::budget::{Budget, Exhaustion, INFINITE_FUEL};
pub use jahob_util::chaos::{Fault, FaultPlan, Lie, SocketFault};
pub use jahob_util::obs::{Event, JsonlSink, MemorySink, NullSink, Recorder, Sink, StderrSink};
pub use service::{Client, Service, ServiceStatus, SubmitOptions, SubmitOutcome};
pub use verify::{
    Config, ConfigBuilder, Isolation, MethodReport, ObligationReport, ReportRender, RequestOptions,
    VerdictSummary, Verifier, VerifyError, VerifyReport,
};
pub use worker::{worker_main, ProcessBackend};
