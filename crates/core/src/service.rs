//! The persistent verification daemon behind `jahob serve`.
//!
//! One warm [`Verifier`] session — goal cache, persistent store,
//! adaptive statistics, supervisor lanes — is shared across every
//! client of a Unix-domain socket. The wire protocol is the same
//! length-prefixed, CRC-framed codec the supervisor already speaks
//! ([`jahob_util::ipc`]), extended with the `SUBMIT`/`REPORT`/`BUSY`/
//! `STATUS`/`DRAIN` kinds.
//!
//! Design contract, in order of precedence:
//!
//! 1. **Identity.** Verdicts and canonical event streams through the
//!    daemon are bit-for-bit identical to one-shot [`Verifier::verify`]
//!    runs — requests dispatch serially onto the one session (method
//!    fan-out inside a request still uses the session's worker pool),
//!    so warm state helps wall-clock and never changes answers.
//! 2. **An accepted request is never dropped.** Admission is a bounded
//!    queue; overflow and drain refusals are *typed* BUSY replies
//!    carrying the queue depth, and everything admitted runs to
//!    completion even if its client has gone away.
//! 3. **A misbehaving client costs only its own connection.** The
//!    socket chaos family ([`SocketFault`]) — torn frames, hung
//!    clients, mid-request disconnects, slow readers — degrades to a
//!    dropped connection, never a wedged queue or a changed verdict
//!    for any other client.
//!
//! Fairness is round-robin across client connections: each connection
//! has a lane, and the dispatcher pops lanes in rotation so one chatty
//! client cannot starve the rest. Per-request deadlines ride in via
//! [`crate::verify::RequestOptions`] and per-request observability
//! streams ride out as `REPORT` frames (tag 0), rendered through the
//! same [`Event::to_json`] as every other sink.
//!
//! Session-wide portfolio knobs — racing, adaptive ordering, relevance
//! slicing — are fixed when the daemon starts (`jahob serve --slicing`,
//! or the `JAHOB_*` environment), not per request: they shape the shared
//! session's caches and statistics, and identity (contract 1) holds for
//! whatever combination the daemon was started with. Note per-request
//! deadlines meter their obligations, which stands the slicing ladder
//! down for that request — deadline requests get the direct dispatch
//! path, exactly as a one-shot `--deadline-ms` run would.

use crate::cli::{self, OutputMode};
use crate::verify::{Config, RequestOptions, Verifier};
use jahob_util::chaos::{FaultPlan, SocketFault};
use jahob_util::ipc::{self, kind, Frame, FrameError, Reader, Writer, DEFAULT_MAX_FRAME};
use jahob_util::obs::{Event, Sink};
use std::collections::VecDeque;
use std::io;
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::Duration;

/// Tag byte leading every `REPORT` payload.
mod report_tag {
    /// One streamed observability line (JSONL, no trailing newline).
    pub const OBS: u8 = 0;
    /// The final rendered report — exactly what `jahob verify` prints.
    pub const FINAL: u8 = 1;
    /// A diagnosed pipeline error message.
    pub const ERROR: u8 = 2;
}

/// How often blocked loops re-check the drain/termination flags.
const POLL: Duration = Duration::from_millis(20);

// ---------------------------------------------------------------------------
// Wire codec (shared by client and daemon, exercised by the unit tests)
// ---------------------------------------------------------------------------

/// Client-side knobs for one submission.
#[derive(Clone, Debug, Default)]
pub struct SubmitOptions {
    /// How the daemon renders the final report (`REPORT` tag 1).
    pub output: OutputMode,
    /// Stream the request's observability events back as `REPORT`
    /// tag-0 frames (one JSONL line each).
    pub stream_obs: bool,
    /// Render streamed events without unstable (wall-clock/schedule)
    /// fields — [`Event::to_json`]`(false)`, the canonical form.
    pub stable_obs: bool,
    /// Per-obligation wall-clock ceiling for this request only.
    pub deadline: Option<Duration>,
}

fn output_to_wire(mode: OutputMode) -> u8 {
    match mode {
        OutputMode::Human => 0,
        OutputMode::Json => 1,
        OutputMode::JsonTiming => 2,
    }
}

fn output_from_wire(byte: u8) -> Option<OutputMode> {
    match byte {
        0 => Some(OutputMode::Human),
        1 => Some(OutputMode::Json),
        2 => Some(OutputMode::JsonTiming),
        _ => None,
    }
}

fn encode_submit(src: &str, options: &SubmitOptions) -> Vec<u8> {
    let mut w = Writer::new();
    let mut flags = 0u8;
    if options.stream_obs {
        flags |= 1;
    }
    if options.stable_obs {
        flags |= 2;
    }
    w.put_u8(flags);
    w.put_u8(output_to_wire(options.output));
    w.put_u64(options.deadline.map_or(0, |d| d.as_millis() as u64));
    w.put_str(src);
    w.into_vec()
}

fn decode_submit(payload: &[u8]) -> Option<(String, SubmitOptions)> {
    let mut r = Reader::new(payload);
    let flags = r.get_u8().ok()?;
    let output = output_from_wire(r.get_u8().ok()?)?;
    let deadline_ms = r.get_u64().ok()?;
    let src = r.get_str().ok()?.to_owned();
    if !r.is_empty() {
        return None;
    }
    Some((
        src,
        SubmitOptions {
            output,
            stream_obs: flags & 1 != 0,
            stable_obs: flags & 2 != 0,
            deadline: (deadline_ms > 0).then(|| Duration::from_millis(deadline_ms)),
        },
    ))
}

/// What a submission came back as.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SubmitOutcome {
    /// A completed run: the rendered report text (ladder exit 0).
    Report(String),
    /// A diagnosed pipeline error (ladder exit 1).
    PipelineError(String),
    /// Admission refused — queue full or daemon draining (ladder
    /// exit 2). `queued`/`depth` count admitted-but-unfinished
    /// requests against the bound.
    Busy {
        queued: u32,
        depth: u32,
        draining: bool,
    },
}

/// A `STATUS` probe's reply.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ServiceStatus {
    pub draining: bool,
    /// Requests admitted but not yet started.
    pub queued: u32,
    /// Requests currently being verified.
    pub in_flight: u32,
    pub accepted: u64,
    pub completed: u64,
    pub rejected: u64,
    /// The admission bound ([`Config::queue_depth`]).
    pub depth: u32,
}

fn frame_io(e: FrameError) -> io::Error {
    match e {
        FrameError::Eof => {
            io::Error::new(io::ErrorKind::UnexpectedEof, "daemon closed the connection")
        }
        FrameError::Io(e) => e,
        other => io::Error::new(io::ErrorKind::InvalidData, format!("broken frame: {other}")),
    }
}

fn truncated() -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, "truncated reply payload")
}

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

/// A connection to a running daemon: the client half of `jahob
/// submit`/`status`/`drain`, and the harness the service tests drive.
pub struct Client {
    stream: UnixStream,
}

impl Client {
    pub fn connect(path: &Path) -> io::Result<Client> {
        Ok(Client {
            stream: UnixStream::connect(path)?,
        })
    }

    /// Submit `src` for verification and block until the daemon
    /// answers. Streamed observability lines (when
    /// [`SubmitOptions::stream_obs`] is set) are handed to `on_obs` in
    /// arrival order, before the final outcome returns.
    ///
    /// Transport failures surface as `Err` — a torn frame or a dropped
    /// daemon is always a loud I/O error, never a fabricated verdict.
    pub fn submit(
        &mut self,
        src: &str,
        options: &SubmitOptions,
        mut on_obs: impl FnMut(&str),
    ) -> io::Result<SubmitOutcome> {
        ipc::write_frame(
            &mut self.stream,
            &Frame::new(kind::SUBMIT, encode_submit(src, options)),
        )?;
        loop {
            let frame = ipc::read_frame(&mut self.stream, DEFAULT_MAX_FRAME).map_err(frame_io)?;
            match frame.kind {
                kind::REPORT => {
                    let mut r = Reader::new(&frame.payload);
                    let tag = r.get_u8().map_err(|_| truncated())?;
                    let text = r.get_str().map_err(|_| truncated())?;
                    match tag {
                        report_tag::OBS => on_obs(text),
                        report_tag::FINAL => return Ok(SubmitOutcome::Report(text.to_owned())),
                        report_tag::ERROR => {
                            return Ok(SubmitOutcome::PipelineError(text.to_owned()))
                        }
                        other => {
                            return Err(io::Error::new(
                                io::ErrorKind::InvalidData,
                                format!("unknown REPORT tag {other}"),
                            ))
                        }
                    }
                }
                kind::BUSY => {
                    let mut r = Reader::new(&frame.payload);
                    let queued = r.get_u32().map_err(|_| truncated())?;
                    let depth = r.get_u32().map_err(|_| truncated())?;
                    let draining = r.get_u8().map_err(|_| truncated())? != 0;
                    return Ok(SubmitOutcome::Busy {
                        queued,
                        depth,
                        draining,
                    });
                }
                other => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("unexpected frame kind {other} mid-submission"),
                    ))
                }
            }
        }
    }

    /// Probe the daemon's queue state.
    pub fn status(&mut self) -> io::Result<ServiceStatus> {
        ipc::write_frame(&mut self.stream, &Frame::new(kind::STATUS, Vec::new()))?;
        let frame = ipc::read_frame(&mut self.stream, DEFAULT_MAX_FRAME).map_err(frame_io)?;
        if frame.kind != kind::STATUS {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("expected STATUS reply, got kind {}", frame.kind),
            ));
        }
        let mut r = Reader::new(&frame.payload);
        let decode = |r: &mut Reader| -> Result<ServiceStatus, ipc::Truncated> {
            Ok(ServiceStatus {
                draining: r.get_u8()? != 0,
                queued: r.get_u32()?,
                in_flight: r.get_u32()?,
                accepted: r.get_u64()?,
                completed: r.get_u64()?,
                rejected: r.get_u64()?,
                depth: r.get_u32()?,
            })
        };
        decode(&mut r).map_err(|_| truncated())
    }

    /// Ask the daemon to drain: finish all admitted work, refuse new
    /// submissions, and exit. Blocks until the daemon acknowledges the
    /// queue is empty; returns its lifetime completed-request count.
    pub fn drain(&mut self) -> io::Result<u64> {
        ipc::write_frame(&mut self.stream, &Frame::new(kind::DRAIN, Vec::new()))?;
        let frame = ipc::read_frame(&mut self.stream, DEFAULT_MAX_FRAME).map_err(frame_io)?;
        if frame.kind != kind::DRAIN {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("expected DRAIN ack, got kind {}", frame.kind),
            ));
        }
        let mut r = Reader::new(&frame.payload);
        r.get_u64().map_err(|_| truncated())
    }
}

// ---------------------------------------------------------------------------
// Daemon state
// ---------------------------------------------------------------------------

/// The write half of one client connection. `gone` latches on any send
/// failure: a dead client silently absorbs the rest of its replies —
/// its admitted requests still run to completion.
struct Conn {
    id: u64,
    writer: Mutex<UnixStream>,
    gone: AtomicBool,
}

impl Conn {
    /// Send one frame through the `service.write` chaos site. Failures
    /// only ever mark this connection gone.
    fn send(&self, shared: &Shared, frame: &Frame) {
        if self.gone.load(Ordering::Relaxed) {
            return;
        }
        let fault = shared.decide_socket("service.write");
        match fault {
            Some(SocketFault::Disconnect) => {
                self.gone.store(true, Ordering::Relaxed);
                return;
            }
            Some(SocketFault::HungClient) => thread::sleep(Duration::from_millis(25)),
            Some(SocketFault::SlowReader) => thread::sleep(Duration::from_millis(5)),
            _ => {}
        }
        let mut writer = self.writer.lock().unwrap();
        let result = if matches!(fault, Some(SocketFault::TornFrame)) {
            // The client sees a checksum mismatch — a loud transport
            // error on its side, never a silently wrong verdict.
            ipc::write_corrupt_frame(&mut *writer, frame)
        } else {
            ipc::write_frame(&mut *writer, frame)
        };
        if result.is_err() {
            self.gone.store(true, Ordering::Relaxed);
        }
    }
}

/// One admitted verification request.
struct Request {
    conn: Arc<Conn>,
    src: String,
    options: SubmitOptions,
}

/// Per-connection FIFO lane; lanes rotate round-robin.
struct Lane {
    conn_id: u64,
    queue: VecDeque<Request>,
}

#[derive(Default)]
struct QueueState {
    lanes: Vec<Lane>,
    /// Round-robin cursor into `lanes`.
    rr: usize,
    /// Admitted, not yet started.
    queued: usize,
    /// Started, not yet finished.
    in_flight: usize,
}

impl QueueState {
    fn push(&mut self, request: Request) {
        let conn_id = request.conn.id;
        match self.lanes.iter_mut().find(|l| l.conn_id == conn_id) {
            Some(lane) => lane.queue.push_back(request),
            None => self.lanes.push(Lane {
                conn_id,
                queue: VecDeque::from([request]),
            }),
        }
        self.queued += 1;
    }

    /// Pop the next request in lane rotation; empty lanes retire so a
    /// departed client costs nothing.
    fn pop_round_robin(&mut self) -> Option<Request> {
        let n = self.lanes.len();
        for step in 0..n {
            let i = (self.rr + step) % n;
            if let Some(request) = self.lanes[i].queue.pop_front() {
                self.queued -= 1;
                let mut next = i + 1;
                if self.lanes[i].queue.is_empty() {
                    self.lanes.remove(i);
                    // The lane that followed the removed one now sits
                    // at its index.
                    next = i;
                }
                self.rr = if self.lanes.is_empty() {
                    0
                } else {
                    next % self.lanes.len()
                };
                return Some(request);
            }
        }
        None
    }

    /// Admitted-but-unfinished requests — what the bound counts.
    fn admitted(&self) -> usize {
        self.queued + self.in_flight
    }
}

struct Shared {
    depth: usize,
    state: Mutex<QueueState>,
    /// Signals the dispatcher that work (or a drain) arrived.
    work: Condvar,
    /// Signals drain waiters that the queue ran dry.
    idle: Condvar,
    draining: AtomicBool,
    /// The dispatcher exited: queue empty, store flushed.
    done: AtomicBool,
    accepted: AtomicU64,
    completed: AtomicU64,
    rejected: AtomicU64,
    next_client: AtomicU64,
    /// The daemon's own event stream (service lifecycle + any request
    /// that did not ask for a private stream).
    sink: Option<Arc<dyn Sink>>,
    plan: Option<Arc<FaultPlan>>,
}

impl Shared {
    fn emit(&self, event: Event) {
        if let Some(sink) = &self.sink {
            sink.emit(&event);
        }
    }

    /// Roll the fault plan at a socket site, recording any injection on
    /// the daemon's own stream (connection threads have no recorder
    /// scope, and service-site injections must never reach a report's
    /// stats).
    fn decide_socket(&self, site: &str) -> Option<SocketFault> {
        let fault = self.plan.as_ref()?.decide_socket(site)?;
        self.emit(Event::ChaosInjected {
            site: site.to_owned(),
            fault: format!("socket-{fault}"),
        });
        Some(fault)
    }

    /// Admit or shed one request. `Ok` carries the admitted count
    /// after the push; `Err` the count and drain flag for the BUSY
    /// reply. An `Ok` here is the promise: the request will run.
    fn admit(&self, request: Request) -> Result<u64, (u64, bool)> {
        let draining = self.draining.load(Ordering::SeqCst);
        let mut state = self.state.lock().unwrap();
        if draining || state.admitted() >= self.depth {
            let admitted = state.admitted() as u64;
            drop(state);
            self.rejected.fetch_add(1, Ordering::SeqCst);
            return Err((admitted, draining));
        }
        state.push(request);
        let admitted = state.admitted() as u64;
        drop(state);
        self.accepted.fetch_add(1, Ordering::SeqCst);
        self.work.notify_all();
        Ok(admitted)
    }

    /// Dispatcher side: block for the next request, or `None` once the
    /// daemon is done/drained dry.
    fn next_request(&self) -> Option<Request> {
        let mut state = self.state.lock().unwrap();
        loop {
            if let Some(request) = state.pop_round_robin() {
                state.in_flight += 1;
                return Some(request);
            }
            if self.done.load(Ordering::SeqCst)
                || (self.draining.load(Ordering::SeqCst) && state.admitted() == 0)
            {
                return None;
            }
            state = self.work.wait_timeout(state, POLL).unwrap().0;
        }
    }

    fn finish_request(&self) {
        let mut state = self.state.lock().unwrap();
        state.in_flight -= 1;
        let dry = state.admitted() == 0;
        drop(state);
        self.completed.fetch_add(1, Ordering::SeqCst);
        if dry {
            self.idle.notify_all();
        }
    }

    fn begin_drain(&self) {
        if self.draining.swap(true, Ordering::SeqCst) {
            return;
        }
        let state = self.state.lock().unwrap();
        self.emit(Event::ServiceDrain {
            queued: state.admitted() as u64,
        });
        drop(state);
        self.work.notify_all();
    }

    fn status(&self) -> ServiceStatus {
        let state = self.state.lock().unwrap();
        ServiceStatus {
            draining: self.draining.load(Ordering::SeqCst),
            queued: state.queued as u32,
            in_flight: state.in_flight as u32,
            accepted: self.accepted.load(Ordering::SeqCst),
            completed: self.completed.load(Ordering::SeqCst),
            rejected: self.rejected.load(Ordering::SeqCst),
            depth: self.depth as u32,
        }
    }
}

// ---------------------------------------------------------------------------
// Per-request observability
// ---------------------------------------------------------------------------

/// A [`Sink`] that ships each event to the requesting client as a
/// `REPORT` tag-0 frame, teeing to the daemon's base sink so the
/// daemon-side stream stays complete. Installed via
/// [`RequestOptions::sink`] only for requests that asked to stream.
struct RequestSink {
    conn: Arc<Conn>,
    shared: Arc<Shared>,
    stable: bool,
    tee: Option<Arc<dyn Sink>>,
}

impl Sink for RequestSink {
    fn emit(&self, event: &Event) {
        let mut w = Writer::new();
        w.put_u8(report_tag::OBS);
        w.put_str(&event.to_json(!self.stable));
        self.conn
            .send(&self.shared, &Frame::new(kind::REPORT, w.into_vec()));
        if let Some(tee) = &self.tee {
            tee.emit(event);
        }
    }

    fn flush(&self) {
        if let Some(tee) = &self.tee {
            tee.flush();
        }
    }
}

// ---------------------------------------------------------------------------
// The daemon
// ---------------------------------------------------------------------------

/// The daemon: a bound socket, one warm [`Verifier`] on a dispatch
/// thread, and a thread per client connection.
pub struct Service {
    shared: Arc<Shared>,
    socket_path: PathBuf,
    listener: UnixListener,
    dispatch: Option<thread::JoinHandle<()>>,
}

impl Service {
    /// Bind `config.socket` and start the dispatch thread. A stale
    /// socket file left by a crashed daemon is reclaimed; a *live*
    /// daemon on the path is an `AddrInUse` error.
    pub fn bind(config: Config) -> io::Result<Service> {
        let socket_path = config.socket.clone().ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidInput,
                "no socket path configured (set --socket or JAHOB_SOCKET)",
            )
        })?;
        if socket_path.exists() {
            if UnixStream::connect(&socket_path).is_ok() {
                return Err(io::Error::new(
                    io::ErrorKind::AddrInUse,
                    format!("a daemon is already serving `{}`", socket_path.display()),
                ));
            }
            std::fs::remove_file(&socket_path)?;
        }
        let listener = UnixListener::bind(&socket_path)?;
        listener.set_nonblocking(true)?;
        let shared = Arc::new(Shared {
            depth: config.queue_depth.max(1),
            state: Mutex::new(QueueState::default()),
            work: Condvar::new(),
            idle: Condvar::new(),
            draining: AtomicBool::new(false),
            done: AtomicBool::new(false),
            accepted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            next_client: AtomicU64::new(0),
            sink: config.sink.clone(),
            plan: config.dispatch.fault_plan.clone(),
        });
        shared.emit(Event::ServiceStart {
            socket: socket_path.display().to_string(),
        });
        let dispatch = thread::spawn({
            let shared = Arc::clone(&shared);
            move || dispatch_loop(shared, config)
        });
        Ok(Service {
            shared,
            socket_path,
            listener,
            dispatch: Some(dispatch),
        })
    }

    pub fn socket_path(&self) -> &Path {
        &self.socket_path
    }

    /// Begin a graceful drain: finish admitted work, refuse new
    /// submissions, then let [`Service::run`] return.
    pub fn drain(&self) {
        self.shared.begin_drain();
    }

    /// Has the dispatcher finished (queue drained dry, store flushed)?
    pub fn drained(&self) -> bool {
        self.shared.done.load(Ordering::SeqCst)
    }

    pub fn status(&self) -> ServiceStatus {
        self.shared.status()
    }

    /// Serve until drained — by a client `DRAIN` frame, a
    /// [`Service::drain`] call, or SIGTERM/SIGINT (when
    /// [`install_termination_handler`] ran). Finishes in-flight work,
    /// flushes sinks, removes the socket file, and returns `Ok(())` —
    /// the graceful-exit contract behind `kill -TERM` → exit 0.
    pub fn run(mut self) -> io::Result<()> {
        loop {
            if termination_requested() {
                self.shared.begin_drain();
            }
            if self.shared.done.load(Ordering::SeqCst) {
                break;
            }
            match self.listener.accept() {
                Ok((stream, _)) => {
                    let id = self.shared.next_client.fetch_add(1, Ordering::SeqCst) + 1;
                    if self.shared.decide_socket("service.accept").is_some() {
                        // Every accept-site fault degrades the same
                        // way: the connection dies before anything is
                        // admitted, so there is nothing to keep alive.
                        self.shared.emit(Event::ServiceDisconnect { client: id });
                        continue;
                    }
                    self.shared.emit(Event::ServiceAccept { client: id });
                    let shared = Arc::clone(&self.shared);
                    thread::spawn(move || serve_connection(shared, stream, id));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => thread::sleep(POLL),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                // A transient accept failure must not kill admitted
                // work; back off and keep serving.
                Err(_) => thread::sleep(POLL),
            }
        }
        if let Some(dispatch) = self.dispatch.take() {
            let _ = dispatch.join();
        }
        if let Some(sink) = &self.shared.sink {
            sink.flush();
        }
        let _ = std::fs::remove_file(&self.socket_path);
        Ok(())
    }
}

/// The dispatch thread: owns the one warm session, pops lanes
/// round-robin, runs requests serially (identity with one-shot runs is
/// structural, not incidental), and flushes the persistent store on the
/// way out.
fn dispatch_loop(shared: Arc<Shared>, config: Config) {
    let base_sink = config.sink.clone();
    let verifier = Verifier::new(config);
    while let Some(request) = shared.next_request() {
        let options = RequestOptions {
            deadline: request.options.deadline,
            sink: request.options.stream_obs.then(|| {
                Arc::new(RequestSink {
                    conn: Arc::clone(&request.conn),
                    shared: Arc::clone(&shared),
                    stable: request.options.stable_obs,
                    tee: base_sink.clone(),
                }) as Arc<dyn Sink>
            }),
        };
        let (tag, text, outcome) = match verifier.verify_with(&request.src, &options) {
            Ok(report) => (
                report_tag::FINAL,
                cli::render_report(&report, &verifier, request.options.output),
                "verified",
            ),
            Err(e) => (report_tag::ERROR, e.to_string(), "error"),
        };
        let mut w = Writer::new();
        w.put_u8(tag);
        w.put_str(&text);
        request
            .conn
            .send(&shared, &Frame::new(kind::REPORT, w.into_vec()));
        shared.emit(Event::ServiceDone {
            client: request.conn.id,
            outcome,
        });
        shared.finish_request();
    }
    // Warm state survives the drain: flush write-behind proofs now, not
    // at some process-exit hook that a SIGKILL would skip.
    if let Some(cache) = verifier.goal_cache() {
        cache.flush_persistent();
    }
    shared.done.store(true, Ordering::SeqCst);
    let _guard = shared.state.lock().unwrap();
    shared.idle.notify_all();
    shared.work.notify_all();
}

/// One client connection: read frames, admit/answer, die quietly on
/// any protocol violation or socket fault.
fn serve_connection(shared: Arc<Shared>, read_half: UnixStream, id: u64) {
    let Ok(write_half) = read_half.try_clone() else {
        shared.emit(Event::ServiceDisconnect { client: id });
        return;
    };
    // The read timeout lets this thread notice `done` without a poll
    // thread; the write timeout keeps a wedged client from holding the
    // dispatcher's reply forever.
    let _ = read_half.set_read_timeout(Some(Duration::from_millis(100)));
    let _ = write_half.set_write_timeout(Some(Duration::from_secs(1)));
    let conn = Arc::new(Conn {
        id,
        writer: Mutex::new(write_half),
        gone: AtomicBool::new(false),
    });
    let mut read_half = read_half;
    loop {
        if shared.done.load(Ordering::SeqCst) || conn.gone.load(Ordering::Relaxed) {
            break;
        }
        let frame = match ipc::read_frame(&mut read_half, DEFAULT_MAX_FRAME) {
            Ok(frame) => frame,
            // Timeout at a frame boundary: idle client, keep waiting. A
            // timeout *mid-header* loses the partial bytes and the next
            // read desyncs to BadMagic — acceptable: that client was
            // torn mid-frame anyway, and only its connection dies.
            Err(FrameError::Io(e))
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                continue;
            }
            // Eof, desync, corruption, truncation: drop the connection.
            Err(_) => break,
        };
        match shared.decide_socket("service.read") {
            // A frame torn on the way in is indistinguishable from
            // corruption; a hung client holds its socket briefly and
            // then is cut loose. Either way only this connection dies.
            Some(SocketFault::TornFrame) | Some(SocketFault::Disconnect) => break,
            Some(SocketFault::HungClient) => {
                thread::sleep(Duration::from_millis(25));
                break;
            }
            Some(SocketFault::SlowReader) => thread::sleep(Duration::from_millis(5)),
            None => {}
        }
        match frame.kind {
            kind::SUBMIT => {
                let Some((src, options)) = decode_submit(&frame.payload) else {
                    break;
                };
                let request = Request {
                    conn: Arc::clone(&conn),
                    src,
                    options,
                };
                match shared.admit(request) {
                    Ok(queued) => shared.emit(Event::ServiceSubmit { client: id, queued }),
                    Err((queued, draining)) => {
                        shared.emit(Event::ServiceBusy { client: id, queued });
                        let mut w = Writer::new();
                        w.put_u32(queued as u32);
                        w.put_u32(shared.depth as u32);
                        w.put_u8(draining as u8);
                        conn.send(&shared, &Frame::new(kind::BUSY, w.into_vec()));
                    }
                }
            }
            kind::STATUS => {
                let s = shared.status();
                let mut w = Writer::new();
                w.put_u8(s.draining as u8);
                w.put_u32(s.queued);
                w.put_u32(s.in_flight);
                w.put_u64(s.accepted);
                w.put_u64(s.completed);
                w.put_u64(s.rejected);
                w.put_u32(s.depth);
                conn.send(&shared, &Frame::new(kind::STATUS, w.into_vec()));
            }
            kind::DRAIN => {
                shared.begin_drain();
                let mut state = shared.state.lock().unwrap();
                while state.admitted() > 0 && !shared.done.load(Ordering::SeqCst) {
                    state = shared.idle.wait_timeout(state, POLL).unwrap().0;
                }
                drop(state);
                let mut w = Writer::new();
                w.put_u64(shared.completed.load(Ordering::SeqCst));
                conn.send(&shared, &Frame::new(kind::DRAIN, w.into_vec()));
            }
            // Anything else is a protocol violation from this client.
            _ => break,
        }
    }
    shared.emit(Event::ServiceDisconnect { client: id });
}

// ---------------------------------------------------------------------------
// Termination signals
// ---------------------------------------------------------------------------

static TERMINATED: AtomicBool = AtomicBool::new(false);

extern "C" fn note_termination(_signum: i32) {
    // Only an async-signal-safe atomic store; Service::run polls it.
    TERMINATED.store(true, Ordering::SeqCst);
}

/// Install SIGTERM/SIGINT handlers that request a graceful drain. The
/// binaries call this before [`Service::run`]; the library never
/// installs signal handlers behind a host application's back.
pub fn install_termination_handler() {
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGTERM, note_termination);
        signal(SIGINT, note_termination);
    }
}

/// Has a SIGTERM/SIGINT arrived since the handler was installed?
pub fn termination_requested() -> bool {
    TERMINATED.load(Ordering::SeqCst)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_conn(id: u64) -> Arc<Conn> {
        let (_a, b) = UnixStream::pair().unwrap();
        Arc::new(Conn {
            id,
            writer: Mutex::new(b),
            gone: AtomicBool::new(false),
        })
    }

    fn test_request(conn: &Arc<Conn>, src: &str) -> Request {
        Request {
            conn: Arc::clone(conn),
            src: src.to_owned(),
            options: SubmitOptions::default(),
        }
    }

    #[test]
    fn submit_payload_roundtrips() {
        let options = SubmitOptions {
            output: OutputMode::JsonTiming,
            stream_obs: true,
            stable_obs: false,
            deadline: Some(Duration::from_millis(750)),
        };
        let payload = encode_submit("class C {}", &options);
        let (src, decoded) = decode_submit(&payload).unwrap();
        assert_eq!(src, "class C {}");
        assert_eq!(decoded.output, OutputMode::JsonTiming);
        assert!(decoded.stream_obs);
        assert!(!decoded.stable_obs);
        assert_eq!(decoded.deadline, Some(Duration::from_millis(750)));

        // No deadline encodes as 0 and decodes back to None.
        let (_, decoded) = decode_submit(&encode_submit("x", &SubmitOptions::default())).unwrap();
        assert_eq!(decoded.deadline, None);
        assert_eq!(decoded.output, OutputMode::Human);

        // Junk is a decode failure, not a panic or a guess.
        assert!(decode_submit(&[]).is_none());
        assert!(decode_submit(&[0, 9, 0, 0]).is_none());
    }

    #[test]
    fn output_mode_wire_roundtrips() {
        for mode in [OutputMode::Human, OutputMode::Json, OutputMode::JsonTiming] {
            assert_eq!(output_from_wire(output_to_wire(mode)), Some(mode));
        }
        assert_eq!(output_from_wire(3), None);
    }

    #[test]
    fn round_robin_interleaves_client_lanes() {
        let a = test_conn(1);
        let b = test_conn(2);
        let mut state = QueueState::default();
        state.push(test_request(&a, "a1"));
        state.push(test_request(&a, "a2"));
        state.push(test_request(&a, "a3"));
        state.push(test_request(&b, "b1"));
        state.push(test_request(&b, "b2"));
        let mut order = Vec::new();
        while let Some(request) = state.pop_round_robin() {
            order.push(request.src);
        }
        // Client b's late submissions are not starved behind a's burst.
        assert_eq!(order, ["a1", "b1", "a2", "b2", "a3"]);
        assert_eq!(state.queued, 0);
        assert!(state.lanes.is_empty());
    }

    #[test]
    fn admission_sheds_above_depth_and_while_draining() {
        let shared = Shared {
            depth: 2,
            state: Mutex::new(QueueState::default()),
            work: Condvar::new(),
            idle: Condvar::new(),
            draining: AtomicBool::new(false),
            done: AtomicBool::new(false),
            accepted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            next_client: AtomicU64::new(0),
            sink: None,
            plan: None,
        };
        let conn = test_conn(7);
        assert_eq!(shared.admit(test_request(&conn, "1")), Ok(1));
        assert_eq!(shared.admit(test_request(&conn, "2")), Ok(2));
        // Full: the typed refusal carries the admitted count.
        assert_eq!(shared.admit(test_request(&conn, "3")), Err((2, false)));
        assert_eq!(shared.rejected.load(Ordering::SeqCst), 1);
        // Draining refuses even with room.
        shared.next_request().unwrap();
        shared.finish_request();
        shared.begin_drain();
        assert_eq!(shared.admit(test_request(&conn, "4")), Err((1, true)));
        // What was admitted before the drain still comes out.
        assert_eq!(shared.next_request().unwrap().src, "2");
        shared.finish_request();
        assert!(shared.next_request().is_none());
    }
}
