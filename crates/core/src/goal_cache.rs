//! A normalized-goal verdict cache shared across a verification run.
//!
//! Goal decomposition (§3 of the paper) and the symbolic shape analysis
//! style of VC generation produce large families of near-duplicate
//! sequents: the same class invariant re-proved at every call site, the
//! same null-receiver check for every field access on the same path
//! condition. The cache recognizes those duplicates *after* simplification
//! and alpha-normalization, so each distinct goal is dispatched to the
//! portfolio exactly once per run and every later occurrence — in the same
//! method or a different one — is a constant-time hit.
//!
//! Three design rules keep the cache sound and deterministic:
//!
//! * **Only `Proved` is cached.** An `Unknown` says "the portfolio ran out
//!   of budget/ideas *in that context*", which a later occurrence with a
//!   fresher budget must not inherit; a `CounterModel` owns an `Rc`-laden
//!   model that cannot cross threads. Provability, by contrast, is
//!   context-free: a goal proved once is proved everywhere.
//! * **Keys are content fingerprints, never interner ids.** Parallel
//!   workers re-parse the program and `Symbol::fresh` draws from a global
//!   counter, so interner ids and primed-name suffixes differ from worker
//!   to worker and run to run. [`normalize`] rewrites bound binders to
//!   positional names and primed havoc/snapshot symbols to first-occurrence
//!   indices, and [`fingerprint`] hashes symbol *strings* (plus the free
//!   symbols' sorts and the dispatch-config digest), so alpha-equivalent
//!   goals collide on purpose and nothing else does.
//! * **In-flight dedup is schedule-independent.** The first dispatcher to
//!   ask for a key claims it; concurrent askers block on the claim instead
//!   of racing to recompute, so the hit/miss tallies in the run report do
//!   not depend on thread count. A claimant that fails to produce a
//!   cacheable verdict (or panics) abandons the claim and wakes the
//!   waiters, one of which re-claims.
//!
//! Observability: the cache itself emits nothing. Every consultation is
//! observed at the dispatcher's call sites as `cache.lookup` /
//! `cache.evict` events (see [`jahob_util::obs`]), keyed by the same
//! [`fingerprint`] this module computes — which worker *physically* won a
//! shared entry is scheduler-dependent, so the pipeline rewrites hit/miss
//! attribution to stream order (`obs::canonicalize`) before emission.

use crate::dispatcher::ProverId;
use jahob_logic::{Form, Sort};
use jahob_util::chaos::{splitmix64, FaultPlan};
use jahob_util::counters::Stats;
use jahob_util::obs::{Event, Sink};
use jahob_util::store::{Record, Store};
use jahob_util::{FxHashMap, FxHashSet, Symbol};
use std::collections::HashMap;
use std::fmt;
use std::path::Path;
use std::rc::Rc;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

// ---- normalization -------------------------------------------------------

/// A goal in cache-canonical form: alpha-renamed binders, canonicalized
/// fresh symbols, plus the free symbols it mentions (canonical name paired
/// with the original symbol, in first-occurrence order) so the fingerprint
/// can fold in their sorts.
#[derive(Clone, Debug)]
pub struct NormalGoal {
    pub form: Form,
    pub frees: Vec<(String, Symbol)>,
}

/// Rewrite `goal` into cache-canonical form:
///
/// * every bound binder becomes positional `?b0`, `?b1`, … in traversal
///   order, so `ALL x. P x` and `ALL y. P y` normalize identically;
/// * every *free* symbol containing a `'` (the [`Symbol::fresh`] marker
///   for havoc/snapshot symbols, whose numeric suffix comes from a global
///   counter and is not reproducible across workers) becomes
///   `stem#k` where `k` is its first-occurrence index among primed frees;
/// * everything else is preserved structurally.
pub fn normalize(goal: &Form) -> NormalGoal {
    let mut n = Normalizer::default();
    let form = n.go(goal);
    NormalGoal {
        form,
        frees: n.frees,
    }
}

#[derive(Default)]
struct Normalizer {
    /// Stack of (original, canonical) bound binders; scanned back-to-front
    /// so shadowing resolves to the innermost binder.
    bound: Vec<(Symbol, Symbol)>,
    next_bound: usize,
    /// Original primed free symbol → canonical `stem#k` symbol.
    primed: FxHashMap<Symbol, Symbol>,
    seen_free: FxHashSet<Symbol>,
    frees: Vec<(String, Symbol)>,
}

impl Normalizer {
    fn var(&mut self, s: Symbol) -> Symbol {
        if let Some((_, canon)) = self.bound.iter().rev().find(|(orig, _)| *orig == s) {
            return *canon;
        }
        let name = s.as_str();
        let canon = match name.find('\'') {
            Some(cut) => match self.primed.get(&s) {
                Some(c) => *c,
                None => {
                    let c = Symbol::intern(&format!("{}#{}", &name[..cut], self.primed.len()));
                    self.primed.insert(s, c);
                    c
                }
            },
            None => s,
        };
        if self.seen_free.insert(s) {
            self.frees.push((canon.as_str().to_owned(), s));
        }
        canon
    }

    fn push_binders(&mut self, binders: &[(Symbol, Sort)]) -> Vec<(Symbol, Sort)> {
        binders
            .iter()
            .map(|(orig, sort)| {
                let canon = Symbol::intern(&format!("?b{}", self.next_bound));
                self.next_bound += 1;
                self.bound.push((*orig, canon));
                (canon, sort.clone())
            })
            .collect()
    }

    fn pop_binders(&mut self, n: usize) {
        self.bound.truncate(self.bound.len() - n);
    }

    fn go(&mut self, f: &Form) -> Form {
        match f {
            Form::Var(s) => Form::Var(self.var(*s)),
            Form::IntLit(_) | Form::BoolLit(_) | Form::Null | Form::EmptySet => f.clone(),
            Form::FiniteSet(es) => Form::FiniteSet(es.iter().map(|e| self.go(e)).collect()),
            Form::Unop(op, a) => Form::Unop(*op, Rc::new(self.go(a))),
            Form::Binop(op, a, b) => Form::Binop(*op, Rc::new(self.go(a)), Rc::new(self.go(b))),
            Form::And(es) => Form::And(es.iter().map(|e| self.go(e)).collect()),
            Form::Or(es) => Form::Or(es.iter().map(|e| self.go(e)).collect()),
            Form::App(h, args) => Form::App(
                Rc::new(self.go(h)),
                args.iter().map(|a| self.go(a)).collect(),
            ),
            Form::Quant(kind, binders, body) => {
                let canon = self.push_binders(binders);
                let body = self.go(body);
                self.pop_binders(binders.len());
                Form::Quant(*kind, canon, Rc::new(body))
            }
            Form::Lambda(binders, body) => {
                let canon = self.push_binders(binders);
                let body = self.go(body);
                self.pop_binders(binders.len());
                Form::Lambda(canon, Rc::new(body))
            }
            Form::Compr(x, sort, body) => {
                let canon = self.push_binders(&[(*x, sort.clone())]);
                let body = self.go(body);
                self.pop_binders(1);
                let (cx, csort) = canon.into_iter().next().expect("one binder");
                Form::Compr(cx, csort, Rc::new(body))
            }
            Form::Old(a) => Form::Old(Rc::new(self.go(a))),
            Form::Ite(c, t, e) => Form::Ite(
                Rc::new(self.go(c)),
                Rc::new(self.go(t)),
                Rc::new(self.go(e)),
            ),
            Form::Tree(fs) => Form::Tree(fs.iter().map(|e| self.go(e)).collect()),
        }
    }
}

// ---- fingerprinting ------------------------------------------------------

/// 128-bit content fingerprint of a normalized goal: the canonical printed
/// form, each free symbol's canonical name and sort (sorts looked up by
/// *original* symbol in `sig`; frees without a declared sort contribute
/// their name only), and the dispatch-config digest. Everything is hashed
/// as text, so the key survives re-interning and fresh-counter drift.
pub fn fingerprint(normal: &NormalGoal, sig: &FxHashMap<Symbol, Sort>, config_digest: u64) -> u128 {
    let mut text = normal.form.to_string();
    text.push('\n');
    for (canon, orig) in &normal.frees {
        text.push_str(canon);
        if let Some(sort) = sig.get(orig) {
            text.push(':');
            text.push_str(&sort.to_string());
        }
        text.push(';');
    }
    hash128(config_digest, text.as_bytes())
}

/// Fold a 128-bit fingerprint to the 64-bit obligation key used by
/// [`jahob_util::chaos::obligation_scope`].
pub fn obligation_key(fp: u128) -> u64 {
    (fp >> 64) as u64 ^ fp as u64
}

/// Two independent splitmix64 lanes over the byte stream, seeded from
/// `salt`. Not cryptographic — it only has to make accidental collisions
/// across a run's few thousand goals vanishingly unlikely.
fn hash128(salt: u64, bytes: &[u8]) -> u128 {
    let mut a = splitmix64(salt ^ 0x9e37_79b9_7f4a_7c15);
    let mut b = splitmix64(salt ^ 0x6a09_e667_f3bc_c909);
    for chunk in bytes.chunks(8) {
        let mut word = [0u8; 8];
        word[..chunk.len()].copy_from_slice(chunk);
        let x = u64::from_le_bytes(word) ^ (chunk.len() as u64) << 56;
        a = splitmix64(a ^ x);
        b = splitmix64(b.rotate_left(29) ^ x);
    }
    ((a as u128) << 64) | b as u128
}

// ---- the cache -----------------------------------------------------------

/// A cached proof: which prover discharged the goal, at what BMC bound,
/// and how much fuel the original dispatch burned (so hits can report the
/// fuel they saved).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CachedProof {
    pub prover: ProverId,
    pub bound: Option<u32>,
    pub fuel: u64,
}

enum Slot {
    /// Some dispatcher claimed this key and is computing; waiters block.
    InFlight,
    Done(CachedProof),
}

/// Result of [`GoalCache::begin`].
pub enum Lookup<'c> {
    /// The goal was already proved this run.
    Hit(CachedProof),
    /// This caller owns the key: it must compute, then [`Claim::fill`] a
    /// proof or drop the claim to release the waiters.
    Miss(Claim<'c>),
}

/// Exclusive right to fill one cache key. Dropping without filling
/// abandons the claim (removing the in-flight marker and waking waiters,
/// one of which re-claims), so a panicking or budget-starved computation
/// never wedges the cache.
pub struct Claim<'c> {
    cache: &'c GoalCache,
    key: u128,
    filled: bool,
}

impl Claim<'_> {
    pub fn fill(mut self, proof: CachedProof) {
        self.filled = true;
        self.cache
            .queue_record(Record::entry(self.key, encode_proof(&proof)));
        let mut slots = self.cache.lock();
        slots.insert(self.key, Slot::Done(proof));
        drop(slots);
        self.cache.ready.notify_all();
    }
}

impl Drop for Claim<'_> {
    fn drop(&mut self) {
        if !self.filled {
            let mut slots = self.cache.lock();
            slots.remove(&self.key);
            drop(slots);
            self.cache.ready.notify_all();
        }
    }
}

// ---- persistence ---------------------------------------------------------

/// Write-behind flush watermarks: a flush goes out when either trips.
/// Small enough that a crash loses little, large enough that a busy run
/// does not write a segment per goal.
const FLUSH_RECORDS: usize = 128;
const FLUSH_BYTES: u64 = 32 * 1024;

/// Proof records queued for the next write-behind flush.
#[derive(Default)]
struct PendingWrites {
    records: Vec<Record>,
    bytes: u64,
}

/// The on-disk shadow of a [`GoalCache`]: a crash-safe segment store (see
/// [`jahob_util::store`]) plus the write-behind queue feeding it. All
/// store failures degrade — an entry that fails to persist is simply
/// re-proved by the next process; it never affects this run's verdicts.
struct PersistLayer {
    store: Mutex<Store>,
    pending: Mutex<PendingWrites>,
    sink: Option<Arc<dyn Sink>>,
    stats: Stats,
}

impl PersistLayer {
    /// Emit a store event to the session sink (if any) and fold its
    /// counter increments into the layer's stats, exactly as the
    /// dispatcher does for run events.
    fn emit(&self, event: Event) {
        event.stat_increments(|name, delta| self.stats.add(name, delta));
        if let Some(sink) = &self.sink {
            sink.emit(&event);
        }
    }

    fn queue(&self, record: Record) {
        let should_flush = {
            let mut pending = lock_or_recover(&self.pending);
            pending.bytes += record.frame_len();
            pending.records.push(record);
            pending.records.len() >= FLUSH_RECORDS || pending.bytes >= FLUSH_BYTES
        };
        if should_flush {
            self.flush();
        }
    }

    /// Write every queued record as one new segment. On failure the
    /// records are dropped (not re-queued): the store module guarantees
    /// the directory stays consistent, and unpersisted proofs just cost
    /// a re-prove next process.
    fn flush(&self) {
        let batch = {
            let mut pending = lock_or_recover(&self.pending);
            pending.bytes = 0;
            std::mem::take(&mut pending.records)
        };
        if batch.is_empty() {
            return;
        }
        let result = lock_or_recover(&self.store).append(&batch);
        match result {
            Ok(bytes) => self.emit(Event::StoreFlush {
                records: batch.len() as u64,
                bytes,
            }),
            Err(e) => self.emit(Event::StoreError {
                op: "flush",
                error: e.to_string(),
            }),
        }
    }
}

fn lock_or_recover<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(|poison| poison.into_inner())
}

/// Encode a [`CachedProof`] as a store payload:
/// `[prover u8][has_bound u8][bound u32 LE][fuel u64 LE]` — 14 bytes.
fn encode_proof(proof: &CachedProof) -> Vec<u8> {
    let mut out = Vec::with_capacity(14);
    out.push(proof.prover as u8);
    out.push(proof.bound.is_some() as u8);
    out.extend_from_slice(&proof.bound.unwrap_or(0).to_le_bytes());
    out.extend_from_slice(&proof.fuel.to_le_bytes());
    out
}

/// Decode a persisted payload; `None` on any malformed byte (wrong
/// length, unknown prover) — the record is skipped, never trusted.
fn decode_proof(payload: &[u8]) -> Option<CachedProof> {
    if payload.len() != 14 {
        return None;
    }
    let prover = ProverId::from_index(payload[0] as usize)?;
    let bound = match payload[1] {
        0 => None,
        1 => Some(u32::from_le_bytes(payload[2..6].try_into().ok()?)),
        _ => return None,
    };
    let fuel = u64::from_le_bytes(payload[6..14].try_into().ok()?);
    Some(CachedProof {
        prover,
        bound,
        fuel,
    })
}

/// The run-wide goal cache. `Send + Sync`: it stores only fingerprints and
/// [`CachedProof`]s, never formulas or models.
#[derive(Default)]
pub struct GoalCache {
    slots: Mutex<HashMap<u128, Slot>>,
    ready: Condvar,
    /// `Some` when this cache shadows an on-disk store. Fills queue proof
    /// records, evictions queue tombstones, drops flush.
    persist: Option<PersistLayer>,
}

impl fmt::Debug for GoalCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("GoalCache")
            .field("entries", &self.len())
            .finish()
    }
}

impl GoalCache {
    pub fn new() -> GoalCache {
        GoalCache::default()
    }

    /// Open a cache shadowed by the crash-safe store at `dir`, replaying
    /// every surviving entry recorded under the same semantic `digest`.
    ///
    /// **Never fails.** Every store-level problem — unreadable directory,
    /// corrupt segments, a live lock held elsewhere — degrades to a
    /// colder cache (at worst a plain in-memory one) with a diagnosed
    /// `store.error` event; verification verdicts are never affected.
    /// Disk-fault injection from `plan` applies at the store's IO
    /// boundary; store events go to `sink` and the layer's stats.
    pub fn open_persistent(
        dir: &Path,
        digest: u64,
        plan: Option<Arc<FaultPlan>>,
        sink: Option<Arc<dyn Sink>>,
    ) -> GoalCache {
        let (store, report) = match Store::open(dir, digest, plan) {
            Ok(opened) => opened,
            Err(e) => {
                // The directory itself is unusable: run with a plain
                // in-memory cache and say so.
                let event = Event::StoreError {
                    op: "open",
                    error: e.to_string(),
                };
                if let Some(sink) = &sink {
                    sink.emit(&event);
                }
                return GoalCache::new();
            }
        };

        let persist = PersistLayer {
            store: Mutex::new(store),
            pending: Mutex::new(PendingWrites::default()),
            sink,
            stats: Stats::new(),
        };
        persist.emit(Event::StoreOpen {
            entries: report.records.len() as u64,
            segments: report.segments,
            lock: report.lock.label(),
        });
        persist.emit(Event::StoreLock {
            state: report.lock.label(),
        });
        if report.dropped > 0 || report.reset.is_some() {
            persist.emit(Event::StoreRecovered {
                dropped: report.dropped,
                reset: report.reset.clone(),
            });
        }
        if report.quarantined > 0 {
            persist.emit(Event::StoreQuarantined {
                segments: report.quarantined,
            });
        }

        // Replay in record order: later records win, tombstones erase.
        let mut slots: HashMap<u128, Slot> = HashMap::new();
        for record in &report.records {
            if record.tombstone {
                slots.remove(&record.key);
            } else if let Some(proof) = decode_proof(&record.payload) {
                slots.insert(record.key, Slot::Done(proof));
            }
        }
        persist.emit(Event::StoreLoad {
            entries: slots.len() as u64,
        });

        GoalCache {
            slots: Mutex::new(slots),
            ready: Condvar::new(),
            persist: Some(persist),
        }
    }

    /// Is this cache shadowed by an on-disk store?
    pub fn is_persistent(&self) -> bool {
        self.persist.is_some()
    }

    /// `true` when the backing store could not take the advisory lock
    /// (another live process holds it): entries loaded, writes skipped.
    pub fn persist_read_only(&self) -> bool {
        self.persist
            .as_ref()
            .is_some_and(|p| lock_or_recover(&p.store).read_only())
    }

    /// Snapshot of the persistence layer's `store.*` counters (empty for
    /// a plain in-memory cache). The verify pipeline merges these into
    /// the report's stats table as unstable entries.
    pub fn persist_stats(&self) -> Vec<(String, u64)> {
        self.persist
            .as_ref()
            .map(|p| p.stats.snapshot())
            .unwrap_or_default()
    }

    /// Force every queued record to disk now. Called on session drop;
    /// exposed for tests and deliberate checkpoints.
    pub fn flush_persistent(&self) {
        if let Some(persist) = &self.persist {
            // A read-only layer queues nothing, but guard anyway: append
            // on a read-only store is a diagnosed error we'd rather not
            // emit once per drop.
            if !lock_or_recover(&persist.store).read_only() {
                persist.flush();
            }
        }
    }

    fn lock(&self) -> MutexGuard<'_, HashMap<u128, Slot>> {
        // Claims are held across prover computations that may panic, but
        // the mutex itself is only ever held for map bookkeeping; recover
        // from poisoning rather than propagating it.
        self.slots.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Look up `key`, blocking while another dispatcher has it in flight.
    pub fn begin(&self, key: u128) -> Lookup<'_> {
        let mut slots = self.lock();
        loop {
            match slots.get(&key) {
                Some(Slot::Done(proof)) => return Lookup::Hit(proof.clone()),
                Some(Slot::InFlight) => {
                    slots = self.ready.wait(slots).unwrap_or_else(|e| e.into_inner());
                }
                None => {
                    slots.insert(key, Slot::InFlight);
                    return Lookup::Miss(Claim {
                        cache: self,
                        key,
                        filled: false,
                    });
                }
            }
        }
    }

    /// Peek without claiming: `Some(proof)` on a completed entry.
    pub fn peek(&self, key: u128) -> Option<CachedProof> {
        match self.lock().get(&key) {
            Some(Slot::Done(proof)) => Some(proof.clone()),
            _ => None,
        }
    }

    /// Drop a completed entry (the watchdog evicts entries it could not
    /// re-confirm). On a persistent cache the eviction is tombstoned on
    /// disk, so the unconfirmable proof is never replayed by a later
    /// process either.
    pub fn evict(&self, key: u128) {
        self.queue_record(Record::tombstone(key));
        self.lock().remove(&key);
        self.ready.notify_all();
    }

    /// Queue `record` for the next write-behind flush (no-op for plain
    /// in-memory caches and read-only stores).
    fn queue_record(&self, record: Record) {
        if let Some(persist) = &self.persist {
            if !lock_or_recover(&persist.store).read_only() {
                persist.queue(record);
            }
        }
    }

    /// Number of completed or in-flight entries.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Drop for GoalCache {
    fn drop(&mut self) {
        // Write-behind durability floor: whatever the watermarks left
        // queued goes to disk when the session (or shared cache's last
        // owner) lets go. A crash before this point loses at most the
        // queued tail — never corrupts what was already flushed.
        self.flush_persistent();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jahob_logic::form;

    fn fp(src: &str) -> u128 {
        let goal = form(src);
        fingerprint(&normalize(&goal), &FxHashMap::default(), 0)
    }

    #[test]
    fn alpha_equivalent_goals_collide() {
        assert_eq!(
            fp("ALL x::int. x <= x"),
            fp("ALL y::int. y <= y"),
            "bound names must not matter"
        );
        assert_eq!(
            fp("ALL x::int. ALL y::int. x <= y | y <= x"),
            fp("ALL a::int. ALL b::int. a <= b | b <= a"),
        );
    }

    #[test]
    fn distinct_goals_do_not_collide() {
        assert_ne!(fp("ALL x::int. x <= x"), fp("ALL x::int. x < x"));
        assert_ne!(fp("a <= b"), fp("b <= a"));
    }

    #[test]
    fn binder_structure_still_distinguishes() {
        // Same body shape, different binder wiring.
        assert_ne!(
            fp("ALL x::int. ALL y::int. x <= y"),
            fp("ALL x::int. ALL y::int. y <= x"),
        );
    }

    #[test]
    fn primed_frees_canonicalize_by_occurrence() {
        // Identical goals up to the fresh-counter suffix must collide…
        let a = form("g'17 <= g'17 + 1");
        let b = form("g'904 <= g'904 + 1");
        let key_a = fingerprint(&normalize(&a), &FxHashMap::default(), 0);
        let key_b = fingerprint(&normalize(&b), &FxHashMap::default(), 0);
        assert_eq!(key_a, key_b);
        // …while distinct primed symbols in one goal stay distinct.
        let c = form("g'1 <= g'2");
        let d = form("g'1 <= g'1");
        let key_c = fingerprint(&normalize(&c), &FxHashMap::default(), 0);
        let key_d = fingerprint(&normalize(&d), &FxHashMap::default(), 0);
        assert_ne!(key_c, key_d);
    }

    #[test]
    fn free_symbol_sorts_enter_the_key() {
        let goal = form("x = x");
        let normal = normalize(&goal);
        let mut sig_int = FxHashMap::default();
        sig_int.insert(Symbol::intern("x"), Sort::Int);
        let mut sig_obj = FxHashMap::default();
        sig_obj.insert(Symbol::intern("x"), Sort::Obj);
        assert_ne!(
            fingerprint(&normal, &sig_int, 0),
            fingerprint(&normal, &sig_obj, 0)
        );
    }

    #[test]
    fn config_digest_enters_the_key() {
        let goal = form("x = x");
        let normal = normalize(&goal);
        let sig = FxHashMap::default();
        assert_ne!(fingerprint(&normal, &sig, 1), fingerprint(&normal, &sig, 2));
    }

    #[test]
    fn hit_after_fill_and_miss_before() {
        let cache = GoalCache::new();
        let key = 42u128;
        let proof = CachedProof {
            prover: ProverId::Lia,
            bound: None,
            fuel: 10,
        };
        match cache.begin(key) {
            Lookup::Miss(claim) => claim.fill(proof.clone()),
            Lookup::Hit(_) => panic!("empty cache cannot hit"),
        }
        match cache.begin(key) {
            Lookup::Hit(got) => assert_eq!(got, proof),
            Lookup::Miss(_) => panic!("filled key must hit"),
        }
        assert_eq!(cache.peek(key), Some(proof));
    }

    #[test]
    fn abandoned_claim_releases_the_key() {
        let cache = GoalCache::new();
        let key = 7u128;
        match cache.begin(key) {
            Lookup::Miss(claim) => drop(claim),
            Lookup::Hit(_) => unreachable!(),
        }
        assert!(cache.is_empty(), "abandoned claim must leave no slot");
        assert!(matches!(cache.begin(key), Lookup::Miss(_)));
    }

    #[test]
    fn eviction_forgets_the_entry() {
        let cache = GoalCache::new();
        if let Lookup::Miss(claim) = cache.begin(1) {
            claim.fill(CachedProof {
                prover: ProverId::Smt,
                bound: None,
                fuel: 1,
            });
        }
        cache.evict(1);
        assert!(matches!(cache.begin(1), Lookup::Miss(_)));
    }

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        use std::sync::atomic::{AtomicU64, Ordering};
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!("jahob-gc-{tag}-{}-{n}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn proof_payload_roundtrips() {
        for proof in [
            CachedProof {
                prover: ProverId::Bapa,
                bound: None,
                fuel: 12345,
            },
            CachedProof {
                prover: ProverId::Bmc,
                bound: Some(3),
                fuel: u64::MAX,
            },
        ] {
            assert_eq!(decode_proof(&encode_proof(&proof)), Some(proof));
        }
        assert_eq!(decode_proof(&[]), None);
        assert_eq!(decode_proof(&[99; 14]), None, "unknown prover index");
        assert_eq!(decode_proof(&[0; 13]), None, "short payload");
    }

    #[test]
    fn persistent_cache_survives_reopen_with_tombstones() {
        let dir = temp_dir("reopen");
        let proof = CachedProof {
            prover: ProverId::Lia,
            bound: None,
            fuel: 77,
        };
        {
            let cache = GoalCache::open_persistent(&dir, 5, None, None);
            assert!(cache.is_persistent());
            for key in [1u128, 2, 3] {
                match cache.begin(key) {
                    Lookup::Miss(claim) => claim.fill(proof.clone()),
                    Lookup::Hit(_) => panic!("cold store cannot hit"),
                }
            }
            cache.evict(2);
            // Drop flushes the queued records + tombstone.
        }
        let cache = GoalCache::open_persistent(&dir, 5, None, None);
        assert_eq!(cache.peek(1), Some(proof.clone()));
        assert_eq!(cache.peek(2), None, "tombstone erases on replay");
        assert_eq!(cache.peek(3), Some(proof));
        assert_eq!(cache.len(), 2);
        let stats = cache.persist_stats();
        let loaded = stats
            .iter()
            .find(|(k, _)| k == "store.load.entries")
            .map(|(_, v)| *v);
        assert_eq!(loaded, Some(2));
        drop(cache);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn digest_change_cold_starts_the_persistent_cache() {
        let dir = temp_dir("digest");
        {
            let cache = GoalCache::open_persistent(&dir, 5, None, None);
            if let Lookup::Miss(claim) = cache.begin(9) {
                claim.fill(CachedProof {
                    prover: ProverId::Smt,
                    bound: None,
                    fuel: 1,
                });
            };
        }
        let cache = GoalCache::open_persistent(&dir, 6, None, None);
        assert!(cache.is_empty(), "foreign-digest entries never replay");
        let stats = cache.persist_stats();
        assert!(
            stats.iter().any(|(k, v)| k == "store.recovered" && *v == 1),
            "reset must be observable: {stats:?}"
        );
        drop(cache);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unusable_directory_degrades_to_memory_cache() {
        // A file where the directory should be: open fails, cache works.
        let dir = temp_dir("file-blocks");
        std::fs::write(&dir, b"i am a file").unwrap();
        let cache = GoalCache::open_persistent(&dir, 5, None, None);
        assert!(!cache.is_persistent());
        if let Lookup::Miss(claim) = cache.begin(1) {
            claim.fill(CachedProof {
                prover: ProverId::Hol,
                bound: None,
                fuel: 2,
            });
        }
        assert!(cache.peek(1).is_some(), "memory cache still functions");
        let _ = std::fs::remove_file(&dir);
    }

    #[test]
    fn concurrent_askers_deduplicate_in_flight() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;
        let cache = Arc::new(GoalCache::new());
        let computes = Arc::new(AtomicUsize::new(0));
        let hits = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let cache = Arc::clone(&cache);
            let computes = Arc::clone(&computes);
            let hits = Arc::clone(&hits);
            handles.push(std::thread::spawn(move || match cache.begin(99) {
                Lookup::Miss(claim) => {
                    computes.fetch_add(1, Ordering::SeqCst);
                    std::thread::sleep(std::time::Duration::from_millis(5));
                    claim.fill(CachedProof {
                        prover: ProverId::Hol,
                        bound: None,
                        fuel: 3,
                    });
                }
                Lookup::Hit(_) => {
                    hits.fetch_add(1, Ordering::SeqCst);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(computes.load(Ordering::SeqCst), 1, "one claimant computes");
        assert_eq!(hits.load(Ordering::SeqCst), 7, "everyone else hits");
    }
}
