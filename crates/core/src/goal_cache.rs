//! A normalized-goal verdict cache shared across a verification run.
//!
//! Goal decomposition (§3 of the paper) and the symbolic shape analysis
//! style of VC generation produce large families of near-duplicate
//! sequents: the same class invariant re-proved at every call site, the
//! same null-receiver check for every field access on the same path
//! condition. The cache recognizes those duplicates *after* simplification
//! and alpha-normalization, so each distinct goal is dispatched to the
//! portfolio exactly once per run and every later occurrence — in the same
//! method or a different one — is a constant-time hit.
//!
//! Three design rules keep the cache sound and deterministic:
//!
//! * **Only `Proved` is cached.** An `Unknown` says "the portfolio ran out
//!   of budget/ideas *in that context*", which a later occurrence with a
//!   fresher budget must not inherit; a `CounterModel` owns an `Rc`-laden
//!   model that cannot cross threads. Provability, by contrast, is
//!   context-free: a goal proved once is proved everywhere.
//! * **Keys are content fingerprints, never interner ids.** Parallel
//!   workers re-parse the program and `Symbol::fresh` draws from a global
//!   counter, so interner ids and primed-name suffixes differ from worker
//!   to worker and run to run. [`normalize`] rewrites bound binders to
//!   positional names and primed havoc/snapshot symbols to first-occurrence
//!   indices, and [`fingerprint`] hashes symbol *strings* (plus the free
//!   symbols' sorts and the dispatch-config digest), so alpha-equivalent
//!   goals collide on purpose and nothing else does.
//! * **In-flight dedup is schedule-independent.** The first dispatcher to
//!   ask for a key claims it; concurrent askers block on the claim instead
//!   of racing to recompute, so the hit/miss tallies in the run report do
//!   not depend on thread count. A claimant that fails to produce a
//!   cacheable verdict (or panics) abandons the claim and wakes the
//!   waiters, one of which re-claims.
//!
//! Observability: the cache itself emits nothing. Every consultation is
//! observed at the dispatcher's call sites as `cache.lookup` /
//! `cache.evict` events (see [`jahob_util::obs`]), keyed by the same
//! [`fingerprint`] this module computes — which worker *physically* won a
//! shared entry is scheduler-dependent, so the pipeline rewrites hit/miss
//! attribution to stream order (`obs::canonicalize`) before emission.

use crate::dispatcher::ProverId;
use jahob_logic::{Form, Sort};
use jahob_util::chaos::splitmix64;
use jahob_util::{FxHashMap, FxHashSet, Symbol};
use std::collections::HashMap;
use std::fmt;
use std::rc::Rc;
use std::sync::{Condvar, Mutex, MutexGuard};

// ---- normalization -------------------------------------------------------

/// A goal in cache-canonical form: alpha-renamed binders, canonicalized
/// fresh symbols, plus the free symbols it mentions (canonical name paired
/// with the original symbol, in first-occurrence order) so the fingerprint
/// can fold in their sorts.
#[derive(Clone, Debug)]
pub struct NormalGoal {
    pub form: Form,
    pub frees: Vec<(String, Symbol)>,
}

/// Rewrite `goal` into cache-canonical form:
///
/// * every bound binder becomes positional `?b0`, `?b1`, … in traversal
///   order, so `ALL x. P x` and `ALL y. P y` normalize identically;
/// * every *free* symbol containing a `'` (the [`Symbol::fresh`] marker
///   for havoc/snapshot symbols, whose numeric suffix comes from a global
///   counter and is not reproducible across workers) becomes
///   `stem#k` where `k` is its first-occurrence index among primed frees;
/// * everything else is preserved structurally.
pub fn normalize(goal: &Form) -> NormalGoal {
    let mut n = Normalizer::default();
    let form = n.go(goal);
    NormalGoal {
        form,
        frees: n.frees,
    }
}

#[derive(Default)]
struct Normalizer {
    /// Stack of (original, canonical) bound binders; scanned back-to-front
    /// so shadowing resolves to the innermost binder.
    bound: Vec<(Symbol, Symbol)>,
    next_bound: usize,
    /// Original primed free symbol → canonical `stem#k` symbol.
    primed: FxHashMap<Symbol, Symbol>,
    seen_free: FxHashSet<Symbol>,
    frees: Vec<(String, Symbol)>,
}

impl Normalizer {
    fn var(&mut self, s: Symbol) -> Symbol {
        if let Some((_, canon)) = self.bound.iter().rev().find(|(orig, _)| *orig == s) {
            return *canon;
        }
        let name = s.as_str();
        let canon = match name.find('\'') {
            Some(cut) => match self.primed.get(&s) {
                Some(c) => *c,
                None => {
                    let c = Symbol::intern(&format!("{}#{}", &name[..cut], self.primed.len()));
                    self.primed.insert(s, c);
                    c
                }
            },
            None => s,
        };
        if self.seen_free.insert(s) {
            self.frees.push((canon.as_str().to_owned(), s));
        }
        canon
    }

    fn push_binders(&mut self, binders: &[(Symbol, Sort)]) -> Vec<(Symbol, Sort)> {
        binders
            .iter()
            .map(|(orig, sort)| {
                let canon = Symbol::intern(&format!("?b{}", self.next_bound));
                self.next_bound += 1;
                self.bound.push((*orig, canon));
                (canon, sort.clone())
            })
            .collect()
    }

    fn pop_binders(&mut self, n: usize) {
        self.bound.truncate(self.bound.len() - n);
    }

    fn go(&mut self, f: &Form) -> Form {
        match f {
            Form::Var(s) => Form::Var(self.var(*s)),
            Form::IntLit(_) | Form::BoolLit(_) | Form::Null | Form::EmptySet => f.clone(),
            Form::FiniteSet(es) => Form::FiniteSet(es.iter().map(|e| self.go(e)).collect()),
            Form::Unop(op, a) => Form::Unop(*op, Rc::new(self.go(a))),
            Form::Binop(op, a, b) => Form::Binop(*op, Rc::new(self.go(a)), Rc::new(self.go(b))),
            Form::And(es) => Form::And(es.iter().map(|e| self.go(e)).collect()),
            Form::Or(es) => Form::Or(es.iter().map(|e| self.go(e)).collect()),
            Form::App(h, args) => Form::App(
                Rc::new(self.go(h)),
                args.iter().map(|a| self.go(a)).collect(),
            ),
            Form::Quant(kind, binders, body) => {
                let canon = self.push_binders(binders);
                let body = self.go(body);
                self.pop_binders(binders.len());
                Form::Quant(*kind, canon, Rc::new(body))
            }
            Form::Lambda(binders, body) => {
                let canon = self.push_binders(binders);
                let body = self.go(body);
                self.pop_binders(binders.len());
                Form::Lambda(canon, Rc::new(body))
            }
            Form::Compr(x, sort, body) => {
                let canon = self.push_binders(&[(*x, sort.clone())]);
                let body = self.go(body);
                self.pop_binders(1);
                let (cx, csort) = canon.into_iter().next().expect("one binder");
                Form::Compr(cx, csort, Rc::new(body))
            }
            Form::Old(a) => Form::Old(Rc::new(self.go(a))),
            Form::Ite(c, t, e) => Form::Ite(
                Rc::new(self.go(c)),
                Rc::new(self.go(t)),
                Rc::new(self.go(e)),
            ),
            Form::Tree(fs) => Form::Tree(fs.iter().map(|e| self.go(e)).collect()),
        }
    }
}

// ---- fingerprinting ------------------------------------------------------

/// 128-bit content fingerprint of a normalized goal: the canonical printed
/// form, each free symbol's canonical name and sort (sorts looked up by
/// *original* symbol in `sig`; frees without a declared sort contribute
/// their name only), and the dispatch-config digest. Everything is hashed
/// as text, so the key survives re-interning and fresh-counter drift.
pub fn fingerprint(normal: &NormalGoal, sig: &FxHashMap<Symbol, Sort>, config_digest: u64) -> u128 {
    let mut text = normal.form.to_string();
    text.push('\n');
    for (canon, orig) in &normal.frees {
        text.push_str(canon);
        if let Some(sort) = sig.get(orig) {
            text.push(':');
            text.push_str(&sort.to_string());
        }
        text.push(';');
    }
    hash128(config_digest, text.as_bytes())
}

/// Fold a 128-bit fingerprint to the 64-bit obligation key used by
/// [`jahob_util::chaos::obligation_scope`].
pub fn obligation_key(fp: u128) -> u64 {
    (fp >> 64) as u64 ^ fp as u64
}

/// Two independent splitmix64 lanes over the byte stream, seeded from
/// `salt`. Not cryptographic — it only has to make accidental collisions
/// across a run's few thousand goals vanishingly unlikely.
fn hash128(salt: u64, bytes: &[u8]) -> u128 {
    let mut a = splitmix64(salt ^ 0x9e37_79b9_7f4a_7c15);
    let mut b = splitmix64(salt ^ 0x6a09_e667_f3bc_c909);
    for chunk in bytes.chunks(8) {
        let mut word = [0u8; 8];
        word[..chunk.len()].copy_from_slice(chunk);
        let x = u64::from_le_bytes(word) ^ (chunk.len() as u64) << 56;
        a = splitmix64(a ^ x);
        b = splitmix64(b.rotate_left(29) ^ x);
    }
    ((a as u128) << 64) | b as u128
}

// ---- the cache -----------------------------------------------------------

/// A cached proof: which prover discharged the goal, at what BMC bound,
/// and how much fuel the original dispatch burned (so hits can report the
/// fuel they saved).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CachedProof {
    pub prover: ProverId,
    pub bound: Option<u32>,
    pub fuel: u64,
}

enum Slot {
    /// Some dispatcher claimed this key and is computing; waiters block.
    InFlight,
    Done(CachedProof),
}

/// Result of [`GoalCache::begin`].
pub enum Lookup<'c> {
    /// The goal was already proved this run.
    Hit(CachedProof),
    /// This caller owns the key: it must compute, then [`Claim::fill`] a
    /// proof or drop the claim to release the waiters.
    Miss(Claim<'c>),
}

/// Exclusive right to fill one cache key. Dropping without filling
/// abandons the claim (removing the in-flight marker and waking waiters,
/// one of which re-claims), so a panicking or budget-starved computation
/// never wedges the cache.
pub struct Claim<'c> {
    cache: &'c GoalCache,
    key: u128,
    filled: bool,
}

impl Claim<'_> {
    pub fn fill(mut self, proof: CachedProof) {
        self.filled = true;
        let mut slots = self.cache.lock();
        slots.insert(self.key, Slot::Done(proof));
        drop(slots);
        self.cache.ready.notify_all();
    }
}

impl Drop for Claim<'_> {
    fn drop(&mut self) {
        if !self.filled {
            let mut slots = self.cache.lock();
            slots.remove(&self.key);
            drop(slots);
            self.cache.ready.notify_all();
        }
    }
}

/// The run-wide goal cache. `Send + Sync`: it stores only fingerprints and
/// [`CachedProof`]s, never formulas or models.
#[derive(Default)]
pub struct GoalCache {
    slots: Mutex<HashMap<u128, Slot>>,
    ready: Condvar,
}

impl fmt::Debug for GoalCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("GoalCache")
            .field("entries", &self.len())
            .finish()
    }
}

impl GoalCache {
    pub fn new() -> GoalCache {
        GoalCache::default()
    }

    fn lock(&self) -> MutexGuard<'_, HashMap<u128, Slot>> {
        // Claims are held across prover computations that may panic, but
        // the mutex itself is only ever held for map bookkeeping; recover
        // from poisoning rather than propagating it.
        self.slots.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Look up `key`, blocking while another dispatcher has it in flight.
    pub fn begin(&self, key: u128) -> Lookup<'_> {
        let mut slots = self.lock();
        loop {
            match slots.get(&key) {
                Some(Slot::Done(proof)) => return Lookup::Hit(proof.clone()),
                Some(Slot::InFlight) => {
                    slots = self.ready.wait(slots).unwrap_or_else(|e| e.into_inner());
                }
                None => {
                    slots.insert(key, Slot::InFlight);
                    return Lookup::Miss(Claim {
                        cache: self,
                        key,
                        filled: false,
                    });
                }
            }
        }
    }

    /// Peek without claiming: `Some(proof)` on a completed entry.
    pub fn peek(&self, key: u128) -> Option<CachedProof> {
        match self.lock().get(&key) {
            Some(Slot::Done(proof)) => Some(proof.clone()),
            _ => None,
        }
    }

    /// Drop a completed entry (the watchdog evicts entries it could not
    /// re-confirm).
    pub fn evict(&self, key: u128) {
        self.lock().remove(&key);
        self.ready.notify_all();
    }

    /// Number of completed or in-flight entries.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jahob_logic::form;

    fn fp(src: &str) -> u128 {
        let goal = form(src);
        fingerprint(&normalize(&goal), &FxHashMap::default(), 0)
    }

    #[test]
    fn alpha_equivalent_goals_collide() {
        assert_eq!(
            fp("ALL x::int. x <= x"),
            fp("ALL y::int. y <= y"),
            "bound names must not matter"
        );
        assert_eq!(
            fp("ALL x::int. ALL y::int. x <= y | y <= x"),
            fp("ALL a::int. ALL b::int. a <= b | b <= a"),
        );
    }

    #[test]
    fn distinct_goals_do_not_collide() {
        assert_ne!(fp("ALL x::int. x <= x"), fp("ALL x::int. x < x"));
        assert_ne!(fp("a <= b"), fp("b <= a"));
    }

    #[test]
    fn binder_structure_still_distinguishes() {
        // Same body shape, different binder wiring.
        assert_ne!(
            fp("ALL x::int. ALL y::int. x <= y"),
            fp("ALL x::int. ALL y::int. y <= x"),
        );
    }

    #[test]
    fn primed_frees_canonicalize_by_occurrence() {
        // Identical goals up to the fresh-counter suffix must collide…
        let a = form("g'17 <= g'17 + 1");
        let b = form("g'904 <= g'904 + 1");
        let key_a = fingerprint(&normalize(&a), &FxHashMap::default(), 0);
        let key_b = fingerprint(&normalize(&b), &FxHashMap::default(), 0);
        assert_eq!(key_a, key_b);
        // …while distinct primed symbols in one goal stay distinct.
        let c = form("g'1 <= g'2");
        let d = form("g'1 <= g'1");
        let key_c = fingerprint(&normalize(&c), &FxHashMap::default(), 0);
        let key_d = fingerprint(&normalize(&d), &FxHashMap::default(), 0);
        assert_ne!(key_c, key_d);
    }

    #[test]
    fn free_symbol_sorts_enter_the_key() {
        let goal = form("x = x");
        let normal = normalize(&goal);
        let mut sig_int = FxHashMap::default();
        sig_int.insert(Symbol::intern("x"), Sort::Int);
        let mut sig_obj = FxHashMap::default();
        sig_obj.insert(Symbol::intern("x"), Sort::Obj);
        assert_ne!(
            fingerprint(&normal, &sig_int, 0),
            fingerprint(&normal, &sig_obj, 0)
        );
    }

    #[test]
    fn config_digest_enters_the_key() {
        let goal = form("x = x");
        let normal = normalize(&goal);
        let sig = FxHashMap::default();
        assert_ne!(fingerprint(&normal, &sig, 1), fingerprint(&normal, &sig, 2));
    }

    #[test]
    fn hit_after_fill_and_miss_before() {
        let cache = GoalCache::new();
        let key = 42u128;
        let proof = CachedProof {
            prover: ProverId::Lia,
            bound: None,
            fuel: 10,
        };
        match cache.begin(key) {
            Lookup::Miss(claim) => claim.fill(proof.clone()),
            Lookup::Hit(_) => panic!("empty cache cannot hit"),
        }
        match cache.begin(key) {
            Lookup::Hit(got) => assert_eq!(got, proof),
            Lookup::Miss(_) => panic!("filled key must hit"),
        }
        assert_eq!(cache.peek(key), Some(proof));
    }

    #[test]
    fn abandoned_claim_releases_the_key() {
        let cache = GoalCache::new();
        let key = 7u128;
        match cache.begin(key) {
            Lookup::Miss(claim) => drop(claim),
            Lookup::Hit(_) => unreachable!(),
        }
        assert!(cache.is_empty(), "abandoned claim must leave no slot");
        assert!(matches!(cache.begin(key), Lookup::Miss(_)));
    }

    #[test]
    fn eviction_forgets_the_entry() {
        let cache = GoalCache::new();
        if let Lookup::Miss(claim) = cache.begin(1) {
            claim.fill(CachedProof {
                prover: ProverId::Smt,
                bound: None,
                fuel: 1,
            });
        }
        cache.evict(1);
        assert!(matches!(cache.begin(1), Lookup::Miss(_)));
    }

    #[test]
    fn concurrent_askers_deduplicate_in_flight() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;
        let cache = Arc::new(GoalCache::new());
        let computes = Arc::new(AtomicUsize::new(0));
        let hits = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let cache = Arc::clone(&cache);
            let computes = Arc::clone(&computes);
            let hits = Arc::clone(&hits);
            handles.push(std::thread::spawn(move || match cache.begin(99) {
                Lookup::Miss(claim) => {
                    computes.fetch_add(1, Ordering::SeqCst);
                    std::thread::sleep(std::time::Duration::from_millis(5));
                    claim.fill(CachedProof {
                        prover: ProverId::Hol,
                        bound: None,
                        fuel: 3,
                    });
                }
                Lookup::Hit(_) => {
                    hits.fetch_add(1, Ordering::SeqCst);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(computes.load(Ordering::SeqCst), 1, "one claimant computes");
        assert_eq!(hits.load(Ordering::SeqCst), 7, "everyone else hits");
    }
}
