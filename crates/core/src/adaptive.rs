//! Adaptive portfolio ordering: per-(goal-class, prover) outcome and cost
//! statistics, optionally persisted in a [`jahob_util::store`] segment
//! store, so warm runs seed each speculative race with the historically
//! best prover first.
//!
//! # Determinism contract
//!
//! Adaptive statistics influence exactly one thing: the order racers are
//! *submitted* to the racing pool ([`AdaptiveStats::order`]). Committed
//! results always replay in canonical portfolio order, so cold and warm
//! stats produce bit-for-bit identical verdicts, diagnoses, and canonical
//! event streams — warmth can only move wall-clock. That is why the stats
//! live outside [`crate::dispatcher::DispatchConfig::cache_digest`] and
//! why the `adaptive.*` counters are flagged unstable by the report.
//!
//! # Stats-segment format
//!
//! One record per `(class, prover)` cell, keyed
//! `(class as u128) << 8 | prover index`, payload 24 bytes little-endian:
//! `[wins u64][attempts u64][micros u64]` as *absolute totals* — replay
//! keeps the last record per key, so rewriting a cell is an append, and
//! any prefix of the log is a valid (merely staler) state. Tombstones
//! erase a cell. Corruption degrades exactly like the proof cache: the
//! store's recovery ladder drops what it must and the stats come up
//! colder, never wrong — a wrong *ordering* hint costs time, not
//! soundness.

use crate::dispatcher::ProverId;
use jahob_logic::{Form, Sort};
use jahob_util::budget::Budget;
use jahob_util::chaos::{splitmix64, FaultPlan};
use jahob_util::counters::Stats;
use jahob_util::obs::{Event, Sink};
use jahob_util::store::{Record, Store};
use jahob_util::{FxHashMap, Symbol};
use std::collections::BTreeMap;
use std::path::Path;
use std::sync::{Arc, Mutex};

/// Coarse, deterministic goal classification: a power-of-two size bucket
/// folded with the *set* of free-variable sorts. Obligations that differ
/// only in naming, constants, or minor structure share a class, so the
/// statistics generalize across methods; obligations from different
/// fragments (pure arithmetic vs. set algebra vs. heap reachability) land
/// in different classes, which is the signal that makes per-class prover
/// preferences worth learning. Content-determined — never wall-clock or
/// schedule — so every run classifies identically.
pub fn goal_class(goal: &Form, sig: &FxHashMap<Symbol, Sort>) -> u64 {
    let normal = crate::goal_cache::normalize(goal);
    let mut class = splitmix64(0xada7_0000 ^ (normal.form.size() as u64).next_power_of_two());
    let mut sorts: Vec<String> = normal
        .frees
        .iter()
        .filter_map(|(_, sym)| sig.get(sym).map(|sort| format!("{sort:?}")))
        .collect();
    sorts.sort();
    sorts.dedup();
    for sort in sorts {
        for byte in sort.bytes() {
            class = splitmix64(class ^ byte as u64);
        }
    }
    class
}

/// One `(class, prover)` cell: absolute totals, mirrored verbatim into
/// the persisted record payload.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
struct Cell {
    wins: u64,
    attempts: u64,
    micros: u64,
}

impl Cell {
    fn encode(self) -> Vec<u8> {
        let mut out = Vec::with_capacity(24);
        out.extend_from_slice(&self.wins.to_le_bytes());
        out.extend_from_slice(&self.attempts.to_le_bytes());
        out.extend_from_slice(&self.micros.to_le_bytes());
        out
    }

    fn decode(payload: &[u8]) -> Option<Cell> {
        if payload.len() != 24 {
            return None;
        }
        let u = |i: usize| u64::from_le_bytes(payload[i..i + 8].try_into().unwrap());
        Some(Cell {
            wins: u(0),
            attempts: u(8),
            micros: u(16),
        })
    }
}

fn record_key(class: u64, prover: ProverId) -> u128 {
    ((class as u128) << 8) | prover.index() as u128
}

struct Inner {
    cells: BTreeMap<(u64, usize), Cell>,
    /// Keys touched since the last flush (absolute totals are rewritten,
    /// so only the latest state per dirty key is appended).
    dirty: Vec<(u64, usize)>,
    store: Option<Store>,
}

/// The adaptive statistics table: in-memory always, store-backed when the
/// session has a cache directory. Owned by the `Verifier` session (like
/// the goal cache) and shared with every per-method dispatcher.
pub struct AdaptiveStats {
    inner: Mutex<Inner>,
    stats: Stats,
    sink: Option<Arc<dyn Sink>>,
}

impl AdaptiveStats {
    /// A purely in-memory table: warm within the session, gone with it.
    pub fn in_memory() -> AdaptiveStats {
        AdaptiveStats {
            inner: Mutex::new(Inner {
                cells: BTreeMap::new(),
                dirty: Vec::new(),
                store: None,
            }),
            stats: Stats::new(),
            sink: None,
        }
    }

    /// Open (or create) the persistent stats segment under `dir`. Never
    /// fails: an unusable directory degrades to the in-memory table — a
    /// colder ordering hint, never an error a verification run has to
    /// care about. Undecodable payloads are skipped record-by-record.
    pub fn open_persistent(
        dir: &Path,
        digest: u64,
        plan: Option<Arc<FaultPlan>>,
        sink: Option<Arc<dyn Sink>>,
    ) -> AdaptiveStats {
        let table = AdaptiveStats {
            inner: Mutex::new(Inner {
                cells: BTreeMap::new(),
                dirty: Vec::new(),
                store: None,
            }),
            stats: Stats::new(),
            sink,
        };
        match Store::open(dir, digest, plan) {
            Ok((store, report)) => {
                let mut inner = table.inner.lock().unwrap();
                for record in &report.records {
                    let class = (record.key >> 8) as u64;
                    let prover = (record.key & 0xff) as usize;
                    if ProverId::from_index(prover).is_none() {
                        continue;
                    }
                    if record.tombstone {
                        inner.cells.remove(&(class, prover));
                    } else if let Some(cell) = Cell::decode(&record.payload) {
                        inner.cells.insert((class, prover), cell);
                    }
                }
                let entries = inner.cells.len() as u64;
                inner.store = Some(store);
                drop(inner);
                table.emit(Event::AdaptiveLoad { entries });
            }
            Err(_) => {
                // Degrade silently (modulo a counter): adaptive ordering
                // is a performance hint, and the proof cache's own open
                // already surfaced any store-level trouble loudly.
                table.stats.bump("adaptive.store.error");
            }
        }
        table
    }

    fn emit(&self, event: Event) {
        event.stat_increments(|name, delta| self.stats.add(name, delta));
        if let Some(sink) = &self.sink {
            sink.emit(&event);
        }
    }

    /// Fold one race attempt into the table.
    pub fn record(&self, class: u64, prover: ProverId, won: bool, micros: u64) {
        let mut inner = self.inner.lock().unwrap();
        let key = (class, prover.index());
        let cell = inner.cells.entry(key).or_default();
        cell.attempts += 1;
        cell.wins += u64::from(won);
        cell.micros += micros;
        if !inner.dirty.contains(&key) {
            inner.dirty.push(key);
        }
        self.stats.bump("adaptive.recorded");
    }

    /// The race start order for `racers` on a goal of `class`: indices
    /// into `racers`, historically-best first. Provers with recorded wins
    /// rank by descending win rate, then ascending mean cost; unseen
    /// provers keep their canonical position at the back of the winners.
    /// With no history at all the order is canonical. Ties break on the
    /// canonical index, so equal statistics give a stable order.
    pub fn order(&self, class: u64, racers: &[ProverId]) -> Vec<usize> {
        let inner = self.inner.lock().unwrap();
        let mut scored: Vec<(usize, u64, u64)> = racers
            .iter()
            .enumerate()
            .map(|(i, prover)| {
                let cell = inner
                    .cells
                    .get(&(class, prover.index()))
                    .copied()
                    .unwrap_or_default();
                match (cell.wins * 1_000).checked_div(cell.attempts) {
                    // Unseen: rank below any recorded winner, above any
                    // recorded loser (exploring beats repeating failure).
                    None => (i, 1, u64::MAX / 2),
                    Some(rate) => (i, rate, cell.micros / cell.attempts),
                }
            })
            .collect();
        scored.sort_by(|a, b| b.1.cmp(&a.1).then(a.2.cmp(&b.2)).then(a.0.cmp(&b.0)));
        self.stats.bump("adaptive.ordered");
        scored.into_iter().map(|(i, _, _)| i).collect()
    }

    /// Append every dirty cell's current totals to the store (when one is
    /// attached and writable). Called at end-of-run and on drop, like the
    /// proof cache's write-behind flush; a failed append drops the batch —
    /// persisted stats may come up staler, never wrong.
    pub fn flush(&self) {
        let mut inner = self.inner.lock().unwrap();
        if inner.dirty.is_empty() {
            return;
        }
        let records: Vec<Record> = inner
            .dirty
            .iter()
            .filter_map(|&(class, prover)| {
                let cell = inner.cells.get(&(class, prover))?;
                let prover = ProverId::from_index(prover)?;
                Some(Record::entry(record_key(class, prover), cell.encode()))
            })
            .collect();
        inner.dirty.clear();
        let entries = records.len() as u64;
        let Some(store) = inner.store.as_mut().filter(|s| !s.read_only()) else {
            return;
        };
        match store.append(&records) {
            Ok(_) => {
                drop(inner);
                self.emit(Event::AdaptiveFlush { entries });
            }
            Err(_) => self.stats.bump("adaptive.store.error"),
        }
    }

    /// Distinct `(class, prover)` cells currently held.
    pub fn entries(&self) -> u64 {
        self.inner.lock().unwrap().cells.len() as u64
    }

    /// Session-cumulative counters (`adaptive.*`), overwritten — not
    /// summed — into the run report like the persistence counters, and
    /// flagged unstable there.
    pub fn persist_stats(&self) -> Vec<(String, u64)> {
        let mut out = self.stats.snapshot();
        out.push(("adaptive.entries".to_owned(), self.entries()));
        out
    }

    /// A deterministic unmetered budget helper for tests and benches that
    /// drive racing directly (races only fire on unmetered obligations).
    pub fn unmetered_budget() -> Budget {
        Budget::unlimited()
    }
}

impl Drop for AdaptiveStats {
    fn drop(&mut self) {
        // Best-effort durability, same contract as the goal cache.
        self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn order_prefers_recorded_winners() {
        let table = AdaptiveStats::in_memory();
        let racers = [ProverId::Hol, ProverId::Lia, ProverId::Bapa];
        // Canonical before any history.
        assert_eq!(table.order(7, &racers), vec![0, 1, 2]);
        table.record(7, ProverId::Bapa, true, 50);
        table.record(7, ProverId::Hol, false, 10);
        let order = table.order(7, &racers);
        assert_eq!(order[0], 2, "recorded winner races first: {order:?}");
        // Unseen Lia ranks above the recorded loser Hol.
        assert_eq!(order, vec![2, 1, 0]);
        // Another class is unaffected.
        assert_eq!(table.order(8, &racers), vec![0, 1, 2]);
    }

    #[test]
    fn ties_break_on_canonical_index() {
        let table = AdaptiveStats::in_memory();
        let racers = [ProverId::Hol, ProverId::Lia];
        table.record(1, ProverId::Hol, true, 100);
        table.record(1, ProverId::Lia, true, 100);
        assert_eq!(table.order(1, &racers), vec![0, 1]);
    }

    #[test]
    fn cell_codec_round_trips() {
        let cell = Cell {
            wins: 3,
            attempts: 9,
            micros: 12_345,
        };
        assert_eq!(Cell::decode(&cell.encode()), Some(cell));
        assert_eq!(Cell::decode(&[0u8; 23]), None);
    }

    #[test]
    fn persistent_stats_survive_reopen() {
        let dir = std::env::temp_dir().join(format!("jahob-adaptive-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let table = AdaptiveStats::open_persistent(&dir, 42, None, None);
            table.record(5, ProverId::Smt, true, 7);
            table.record(5, ProverId::Fol, false, 9);
            table.flush();
        }
        let warm = AdaptiveStats::open_persistent(&dir, 42, None, None);
        assert_eq!(warm.entries(), 2);
        let racers = [ProverId::Fol, ProverId::Smt];
        assert_eq!(warm.order(5, &racers), vec![1, 0]);
        // A digest change invalidates: foreign semantics never replay.
        let cold = AdaptiveStats::open_persistent(&dir, 43, None, None);
        assert_eq!(cold.entries(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
