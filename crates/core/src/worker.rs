//! Out-of-process prover attempts: the wire codec, the worker-side entry
//! point, and the parent-side [`ProcessBackend`].
//!
//! The dispatcher's portfolio normally runs every prover in-process under
//! cooperative fuel/deadline checks. With `Isolation::Process` selected,
//! the *remotable* portfolio members (everything except the model finder,
//! whose verdicts carry `Rc`-laden models) execute inside child worker
//! processes policed by [`jahob_util::supervisor`]: a prover wedged in a
//! non-fuel-metered loop is SIGKILLed at its deadline, a prover that blows
//! its memory ceiling is reaped as `ResourceExceeded`, and a crash-looping
//! lane is quarantined while the dispatcher falls back to the in-process
//! path — verdicts never change, only the isolation weakens.
//!
//! The request/reply payloads ride the CRC-framed protocol from
//! [`jahob_util::ipc`]. Formulas cross the pipe in a compact tag-prefixed
//! binary form; interned [`Symbol`]s travel as strings and are re-interned
//! on the far side, so parent and child never share interner state.

use crate::dispatcher::{Diagnosis, FailureReason, ProverId, Verdict};
use jahob_logic::{BinOp, Form, QKind, Sort, UnOp};
use jahob_util::budget::{Budget, Exhaustion, INFINITE_FUEL};
use jahob_util::counters::Stats;
use jahob_util::ipc::{Reader, Truncated, Writer};
use jahob_util::obs::Sink;
use jahob_util::supervisor::{
    self, Supervisor, SupervisorConfig, WorkerOptions, WorkerReply, ENV_WORKER_MEM,
};
use jahob_util::{FxHashMap, Symbol};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::rc::Rc;
use std::sync::Arc;
use std::time::Duration;

// ---- chaos flags ---------------------------------------------------------
//
// IPC faults are *decided* in the parent (so the decision replays from the
// chaos plan) but *executed* cooperatively by the worker: the request
// carries a flag byte telling the child how to misbehave. A real defective
// prover would misbehave spontaneously; the effect on the parent — a hang,
// a dead pipe, a garbled frame — is identical.

/// Spin forever, ignoring the budget; only the parent's SIGKILL ends it.
pub(crate) const FLAG_HANG: u8 = 1 << 0;
/// Abort the process before replying.
pub(crate) const FLAG_DIE: u8 = 1 << 1;
/// Reply with a deliberately corrupted frame checksum.
pub(crate) const FLAG_GARBLE: u8 = 1 << 2;
/// Suppress heartbeats past the suspect threshold, then answer normally.
pub(crate) const FLAG_SLOW_BEAT: u8 = 1 << 3;
/// Allocate until the memory ceiling aborts the process.
pub(crate) const FLAG_OOM: u8 = 1 << 4;

/// The flag byte for an injected IPC fault.
pub(crate) fn ipc_fault_flag(fault: jahob_util::IpcFault) -> u8 {
    use jahob_util::IpcFault::*;
    match fault {
        HungChild => FLAG_HANG,
        KilledChild => FLAG_DIE,
        GarbledFrame => FLAG_GARBLE,
        SlowHeartbeat => FLAG_SLOW_BEAT,
        OomChild => FLAG_OOM,
    }
}

/// Which portfolio members may run out of process. The model finder stays
/// in-process: its counter-models hold `Rc` interpretations that are not
/// `Send`, let alone serializable, and its verdicts feed the watchdog's
/// reference evaluator directly.
pub(crate) fn remotable(prover: ProverId) -> bool {
    matches!(
        prover,
        ProverId::Hol | ProverId::Lia | ProverId::Bapa | ProverId::Smt | ProverId::Fol
    )
}

// ---- hypothesis filtering (shared by dispatcher and worker) --------------

/// Drop hypotheses outside a prover's fragment, at conjunct granularity:
/// one foreign conjunct must not take the rest of its conjunction down
/// with it ([`jahob_logic::sequent::Sequent::of`] does the flattening).
/// Dropping hypotheses is sound for validity. Returns `None` when nothing
/// was dropped (the full goal was already tried). This is the per-prover,
/// fragment-keyed cousin of the dispatcher's goal-directed relevance
/// slicer — both are weakenings of the same sequent decomposition.
pub(crate) fn filtered(goal: &Form, keep: &mut dyn FnMut(&Form) -> bool) -> Option<Form> {
    let mut seq = jahob_logic::sequent::Sequent::of(goal);
    if seq.hyps.is_empty() {
        return None;
    }
    let total = seq.hyps.len();
    seq.hyps.retain(|h| keep(&h.form));
    if seq.hyps.len() == total {
        return None;
    }
    Some(seq.to_form())
}

// ---- the portfolio attempt (shared by both execution backends) -----------

/// One prover's pass over the goal variants — the body the dispatcher's
/// `guard` runs for every remotable portfolio member, extracted so the
/// in-process path and the worker process execute *the same code*: a
/// verdict can never depend on which side of the pipe computed it.
pub(crate) fn portfolio_attempt(
    prover: ProverId,
    variants: &[(Form, FxHashMap<Symbol, Sort>)],
    fol_iterations: usize,
    slice: &Budget,
    diag: &mut Diagnosis,
    stats: &Stats,
) -> Result<Option<Verdict>, Exhaustion> {
    match prover {
        ProverId::Hol => {
            for (goal, _) in variants {
                // The structural tactic is for small goals; its
                // case-splitting is exponential in disjunctive hypotheses.
                if goal.size() > 180 {
                    continue;
                }
                if jahob_hol::auto_proves_governed(goal, slice)? {
                    stats.bump("proved.hol");
                    return Ok(Some(Verdict::Proved {
                        prover: ProverId::Hol,
                        bound: None,
                    }));
                }
                diag.record(ProverId::Hol, FailureReason::GaveUp);
            }
            Ok(None)
        }
        ProverId::Lia => {
            for (goal, _) in variants {
                stats.bump("tried.presburger");
                let mut candidates = vec![goal.clone()];
                if let Some(f) = filtered(goal, &mut |h| {
                    jahob_presburger::translate::form_to_pform(h).is_ok()
                }) {
                    candidates.push(f);
                }
                for g in &candidates {
                    match jahob_presburger::translate::decide_valid_budgeted(g, slice) {
                        Ok(true) => {
                            stats.bump("proved.presburger");
                            return Ok(Some(Verdict::Proved {
                                prover: ProverId::Lia,
                                bound: None,
                            }));
                        }
                        Ok(false) => diag.record(ProverId::Lia, FailureReason::GaveUp),
                        Err(jahob_presburger::PresburgerFailure::Fragment(_)) => {
                            diag.record(ProverId::Lia, FailureReason::Unsupported)
                        }
                        Err(jahob_presburger::PresburgerFailure::Exhausted(why)) => {
                            return Err(why)
                        }
                    }
                }
            }
            Ok(None)
        }
        ProverId::Bapa => {
            for (goal, sig) in variants {
                stats.bump("tried.bapa");
                let mut candidates = vec![goal.clone()];
                if let Some(f) = filtered(goal, &mut |h| jahob_bapa::base_set_count(h, sig).is_ok())
                {
                    candidates.push(f);
                }
                for g in &candidates {
                    match jahob_bapa::bapa_valid_budgeted(g, sig, slice) {
                        Ok(true) => {
                            stats.bump("proved.bapa");
                            return Ok(Some(Verdict::Proved {
                                prover: ProverId::Bapa,
                                bound: None,
                            }));
                        }
                        Ok(false) => diag.record(ProverId::Bapa, FailureReason::GaveUp),
                        Err(jahob_bapa::BapaFailure::Fragment(_)) => {
                            diag.record(ProverId::Bapa, FailureReason::Unsupported)
                        }
                        Err(jahob_bapa::BapaFailure::Exhausted(why)) => return Err(why),
                    }
                }
            }
            Ok(None)
        }
        ProverId::Smt => {
            for (goal, sig) in variants {
                // The Nelson–Oppen core is for compact ground goals; on big
                // VC chains the lazy loop + arrangement enumeration
                // dominates.
                if goal.size() > 150 {
                    continue;
                }
                stats.bump("tried.smt");
                let mut candidates = vec![goal.clone()];
                if let Some(f) = filtered(goal, &mut |h| jahob_smt::in_fragment(h, sig)) {
                    candidates.push(f);
                }
                for g in &candidates {
                    let prepared = jahob_smt::lift_ite(g);
                    match jahob_smt::smt_valid_budgeted(&prepared, sig, slice) {
                        Ok(true) => {
                            stats.bump("proved.smt");
                            return Ok(Some(Verdict::Proved {
                                prover: ProverId::Smt,
                                bound: None,
                            }));
                        }
                        Ok(false) => diag.record(ProverId::Smt, FailureReason::GaveUp),
                        Err(jahob_smt::SmtFailure::Fragment(_)) => {
                            diag.record(ProverId::Smt, FailureReason::Unsupported)
                        }
                        Err(jahob_smt::SmtFailure::Exhausted(why)) => return Err(why),
                    }
                }
            }
            Ok(None)
        }
        ProverId::Fol => {
            for (goal, sig) in variants {
                stats.bump("tried.fol");
                let config = jahob_fol::ProverConfig {
                    max_iterations: fol_iterations,
                    ..Default::default()
                };
                let (prepared, axioms) = jahob_fol::reach::prepare(goal, sig);
                let negated = Form::not(prepared);
                let clauses = (|| -> Result<_, jahob_fol::clause::ClausifyError> {
                    let mut clauses = jahob_fol::clausify(&negated)?;
                    for ax in &axioms {
                        clauses.extend(jahob_fol::clausify(ax)?);
                    }
                    Ok(clauses)
                })();
                match clauses {
                    Err(_) => diag.record(ProverId::Fol, FailureReason::Unsupported),
                    Ok(clauses) => match jahob_fol::prove_budgeted(clauses, &config, slice)? {
                        jahob_fol::ProveResult::Proved => {
                            stats.bump("proved.fol");
                            return Ok(Some(Verdict::Proved {
                                prover: ProverId::Fol,
                                bound: None,
                            }));
                        }
                        _ => diag.record(ProverId::Fol, FailureReason::GaveUp),
                    },
                }
            }
            Ok(None)
        }
        ProverId::Simplifier | ProverId::Bmc => Ok(None),
    }
}

// ---- wire codec ----------------------------------------------------------

/// Decode failure: the payload ran short or held an invalid tag. A CRC-
/// clean frame that fails to decode means a protocol-version mismatch, not
/// line noise; the caller degrades to the in-process path.
#[derive(Debug, PartialEq, Eq)]
pub(crate) struct Malformed;

impl From<Truncated> for Malformed {
    fn from(_: Truncated) -> Malformed {
        Malformed
    }
}

fn put_sort(w: &mut Writer, sort: &Sort) {
    match sort {
        Sort::Bool => w.put_u8(0),
        Sort::Int => w.put_u8(1),
        Sort::Obj => w.put_u8(2),
        Sort::Set(e) => {
            w.put_u8(3);
            put_sort(w, e);
        }
        Sort::Fun(args, ret) => {
            w.put_u8(4);
            w.put_u32(args.len() as u32);
            for a in args {
                put_sort(w, a);
            }
            put_sort(w, ret);
        }
        Sort::Var(v) => {
            w.put_u8(5);
            w.put_u32(*v);
        }
    }
}

fn get_sort(r: &mut Reader<'_>) -> Result<Sort, Malformed> {
    Ok(match r.get_u8()? {
        0 => Sort::Bool,
        1 => Sort::Int,
        2 => Sort::Obj,
        3 => Sort::Set(Box::new(get_sort(r)?)),
        4 => {
            let n = r.get_u32()? as usize;
            let mut args = Vec::with_capacity(n.min(64));
            for _ in 0..n {
                args.push(get_sort(r)?);
            }
            Sort::Fun(args, Box::new(get_sort(r)?))
        }
        5 => Sort::Var(r.get_u32()?),
        _ => return Err(Malformed),
    })
}

fn put_binders(w: &mut Writer, binders: &[(Symbol, Sort)]) {
    w.put_u32(binders.len() as u32);
    for (name, sort) in binders {
        w.put_str(name.as_str());
        put_sort(w, sort);
    }
}

fn get_binders(r: &mut Reader<'_>) -> Result<Vec<(Symbol, Sort)>, Malformed> {
    let n = r.get_u32()? as usize;
    let mut out = Vec::with_capacity(n.min(64));
    for _ in 0..n {
        let name = Symbol::intern(r.get_str()?);
        out.push((name, get_sort(r)?));
    }
    Ok(out)
}

fn put_forms(w: &mut Writer, forms: &[Form]) {
    w.put_u32(forms.len() as u32);
    for f in forms {
        put_form(w, f);
    }
}

fn get_forms(r: &mut Reader<'_>) -> Result<Vec<Form>, Malformed> {
    let n = r.get_u32()? as usize;
    let mut out = Vec::with_capacity(n.min(64));
    for _ in 0..n {
        out.push(get_form(r)?);
    }
    Ok(out)
}

fn put_form(w: &mut Writer, form: &Form) {
    match form {
        Form::Var(s) => {
            w.put_u8(0);
            w.put_str(s.as_str());
        }
        Form::IntLit(i) => {
            w.put_u8(1);
            w.put_i64(*i);
        }
        Form::BoolLit(b) => {
            w.put_u8(2);
            w.put_u8(*b as u8);
        }
        Form::Null => w.put_u8(3),
        Form::EmptySet => w.put_u8(4),
        Form::FiniteSet(es) => {
            w.put_u8(5);
            put_forms(w, es);
        }
        Form::Unop(op, e) => {
            w.put_u8(6);
            w.put_u8(match op {
                UnOp::Not => 0,
                UnOp::Neg => 1,
                UnOp::Card => 2,
            });
            put_form(w, e);
        }
        Form::Binop(op, a, b) => {
            w.put_u8(7);
            w.put_u8(match op {
                BinOp::Implies => 0,
                BinOp::Iff => 1,
                BinOp::Eq => 2,
                BinOp::Elem => 3,
                BinOp::Lt => 4,
                BinOp::Le => 5,
                BinOp::Subseteq => 6,
                BinOp::Add => 7,
                BinOp::Sub => 8,
                BinOp::Mul => 9,
                BinOp::Union => 10,
                BinOp::Inter => 11,
                BinOp::Diff => 12,
            });
            put_form(w, a);
            put_form(w, b);
        }
        Form::And(es) => {
            w.put_u8(8);
            put_forms(w, es);
        }
        Form::Or(es) => {
            w.put_u8(9);
            put_forms(w, es);
        }
        Form::App(head, args) => {
            w.put_u8(10);
            put_form(w, head);
            put_forms(w, args);
        }
        Form::Quant(kind, binders, body) => {
            w.put_u8(11);
            w.put_u8(match kind {
                QKind::All => 0,
                QKind::Ex => 1,
            });
            put_binders(w, binders);
            put_form(w, body);
        }
        Form::Lambda(binders, body) => {
            w.put_u8(12);
            put_binders(w, binders);
            put_form(w, body);
        }
        Form::Compr(name, sort, body) => {
            w.put_u8(13);
            w.put_str(name.as_str());
            put_sort(w, sort);
            put_form(w, body);
        }
        Form::Old(e) => {
            w.put_u8(14);
            put_form(w, e);
        }
        Form::Ite(c, t, e) => {
            w.put_u8(15);
            put_form(w, c);
            put_form(w, t);
            put_form(w, e);
        }
        Form::Tree(fields) => {
            w.put_u8(16);
            put_forms(w, fields);
        }
    }
}

fn get_form(r: &mut Reader<'_>) -> Result<Form, Malformed> {
    Ok(match r.get_u8()? {
        0 => Form::Var(Symbol::intern(r.get_str()?)),
        1 => Form::IntLit(r.get_i64()?),
        2 => Form::BoolLit(r.get_u8()? != 0),
        3 => Form::Null,
        4 => Form::EmptySet,
        5 => Form::FiniteSet(get_forms(r)?),
        6 => {
            let op = match r.get_u8()? {
                0 => UnOp::Not,
                1 => UnOp::Neg,
                2 => UnOp::Card,
                _ => return Err(Malformed),
            };
            Form::Unop(op, Rc::new(get_form(r)?))
        }
        7 => {
            let op = match r.get_u8()? {
                0 => BinOp::Implies,
                1 => BinOp::Iff,
                2 => BinOp::Eq,
                3 => BinOp::Elem,
                4 => BinOp::Lt,
                5 => BinOp::Le,
                6 => BinOp::Subseteq,
                7 => BinOp::Add,
                8 => BinOp::Sub,
                9 => BinOp::Mul,
                10 => BinOp::Union,
                11 => BinOp::Inter,
                12 => BinOp::Diff,
                _ => return Err(Malformed),
            };
            let a = get_form(r)?;
            let b = get_form(r)?;
            Form::Binop(op, Rc::new(a), Rc::new(b))
        }
        8 => Form::And(get_forms(r)?),
        9 => Form::Or(get_forms(r)?),
        10 => {
            let head = get_form(r)?;
            Form::App(Rc::new(head), get_forms(r)?)
        }
        11 => {
            let kind = match r.get_u8()? {
                0 => QKind::All,
                1 => QKind::Ex,
                _ => return Err(Malformed),
            };
            let binders = get_binders(r)?;
            Form::Quant(kind, binders, Rc::new(get_form(r)?))
        }
        12 => {
            let binders = get_binders(r)?;
            Form::Lambda(binders, Rc::new(get_form(r)?))
        }
        13 => {
            let name = Symbol::intern(r.get_str()?);
            let sort = get_sort(r)?;
            Form::Compr(name, sort, Rc::new(get_form(r)?))
        }
        14 => Form::Old(Rc::new(get_form(r)?)),
        15 => {
            let c = get_form(r)?;
            let t = get_form(r)?;
            let e = get_form(r)?;
            Form::Ite(Rc::new(c), Rc::new(t), Rc::new(e))
        }
        16 => Form::Tree(get_forms(r)?),
        _ => return Err(Malformed),
    })
}

/// Only the simple, worker-producible reasons cross the wire;
/// `Disagreement` carries verdict payloads and is minted exclusively by
/// the parent-side watchdog.
fn reason_code(reason: FailureReason) -> Option<u8> {
    Some(match reason {
        FailureReason::Unsupported => 0,
        FailureReason::CircuitOpen => 1,
        FailureReason::GaveUp => 2,
        FailureReason::FuelExhausted => 3,
        FailureReason::Timeout => 4,
        FailureReason::Panicked => 5,
        FailureReason::ResourceExceeded => 6,
        FailureReason::Unconfirmed => 7,
        FailureReason::Disagreement { .. } => return None,
    })
}

fn reason_from_code(code: u8) -> Result<FailureReason, Malformed> {
    Ok(match code {
        0 => FailureReason::Unsupported,
        1 => FailureReason::CircuitOpen,
        2 => FailureReason::GaveUp,
        3 => FailureReason::FuelExhausted,
        4 => FailureReason::Timeout,
        5 => FailureReason::Panicked,
        6 => FailureReason::ResourceExceeded,
        7 => FailureReason::Unconfirmed,
        _ => return Err(Malformed),
    })
}

/// One prover attempt shipped to a worker.
pub(crate) struct Request {
    pub prover: ProverId,
    /// Injected-misbehavior flags (`FLAG_*`), zero in production.
    pub chaos: u8,
    /// Fuel allowance for the attempt ([`INFINITE_FUEL`] = unmetered).
    pub fuel: u64,
    /// Wall-clock allowance in milliseconds; the worker times out
    /// cooperatively just inside the parent's hard SIGKILL deadline.
    pub deadline_ms: u64,
    pub fol_iterations: u64,
    /// Goal variants with their inferred signatures, as built by
    /// `prove_piece_inner`.
    pub variants: Vec<(Form, FxHashMap<Symbol, Sort>)>,
}

impl Request {
    pub(crate) fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.put_u8(self.prover.index() as u8);
        w.put_u8(self.chaos);
        w.put_u64(self.fuel);
        w.put_u64(self.deadline_ms);
        w.put_u64(self.fol_iterations);
        w.put_u32(self.variants.len() as u32);
        for (form, sig) in &self.variants {
            put_form(&mut w, form);
            // Signature entries sorted by name: FxHashMap iteration order
            // is arbitrary and request bytes should be content-determined.
            let mut entries: Vec<_> = sig.iter().collect();
            entries.sort_by_key(|(name, _)| name.as_str());
            w.put_u32(entries.len() as u32);
            for (name, sort) in entries {
                w.put_str(name.as_str());
                put_sort(&mut w, sort);
            }
        }
        w.into_vec()
    }

    pub(crate) fn decode(payload: &[u8]) -> Result<Request, Malformed> {
        let mut r = Reader::new(payload);
        let prover = ProverId::from_index(r.get_u8()? as usize).ok_or(Malformed)?;
        let chaos = r.get_u8()?;
        let fuel = r.get_u64()?;
        let deadline_ms = r.get_u64()?;
        let fol_iterations = r.get_u64()?;
        let n = r.get_u32()? as usize;
        let mut variants = Vec::with_capacity(n.min(16));
        for _ in 0..n {
            let form = get_form(&mut r)?;
            let entries = r.get_u32()? as usize;
            let mut sig = FxHashMap::default();
            for _ in 0..entries {
                let name = Symbol::intern(r.get_str()?);
                sig.insert(name, get_sort(&mut r)?);
            }
            variants.push((form, sig));
        }
        if !r.is_empty() {
            return Err(Malformed);
        }
        Ok(Request {
            prover,
            chaos,
            fuel,
            deadline_ms,
            fol_iterations,
            variants,
        })
    }
}

/// How a worker attempt ended, as decoded from the reply payload.
#[derive(Debug, PartialEq, Eq)]
pub(crate) enum ReplyOutcome {
    /// The prover finished without deciding; the diagnosis says why.
    NoDecision,
    /// Proved (remotable provers never produce counter-models).
    Proved {
        prover: ProverId,
        bound: Option<u32>,
    },
    /// The attempt's budget slice ran dry inside the worker.
    Exhausted(Exhaustion),
    /// The prover panicked; the worker caught it and stayed up.
    Panicked,
}

/// The decoded reply: outcome plus the side effects the parent must
/// replay — fuel actually burned, diagnosis entries, and counter bumps.
pub(crate) struct DecodedReply {
    pub outcome: ReplyOutcome,
    pub fuel_spent: u64,
    pub diag: Vec<(ProverId, FailureReason)>,
    pub stats: Vec<(String, u64)>,
}

impl DecodedReply {
    pub(crate) fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        match &self.outcome {
            ReplyOutcome::NoDecision => w.put_u8(0),
            ReplyOutcome::Proved { prover, bound } => {
                w.put_u8(1);
                w.put_u8(prover.index() as u8);
                match bound {
                    Some(b) => {
                        w.put_u8(1);
                        w.put_u32(*b);
                    }
                    None => w.put_u8(0),
                }
            }
            ReplyOutcome::Exhausted(why) => {
                w.put_u8(2);
                w.put_u8(match why {
                    Exhaustion::Timeout => 0,
                    Exhaustion::Fuel => 1,
                });
            }
            ReplyOutcome::Panicked => w.put_u8(3),
        }
        w.put_u64(self.fuel_spent);
        w.put_u32(self.diag.len() as u32);
        for (prover, reason) in &self.diag {
            w.put_u8(prover.index() as u8);
            // Worker diagnoses are always simple reasons; unknown future
            // variants degrade to GaveUp rather than killing the reply.
            w.put_u8(reason_code(*reason).unwrap_or(2));
        }
        w.put_u32(self.stats.len() as u32);
        for (name, delta) in &self.stats {
            w.put_str(name);
            w.put_u64(*delta);
        }
        w.into_vec()
    }

    pub(crate) fn decode(payload: &[u8]) -> Result<DecodedReply, Malformed> {
        let mut r = Reader::new(payload);
        let outcome = match r.get_u8()? {
            0 => ReplyOutcome::NoDecision,
            1 => {
                let prover = ProverId::from_index(r.get_u8()? as usize).ok_or(Malformed)?;
                let bound = match r.get_u8()? {
                    0 => None,
                    1 => Some(r.get_u32()?),
                    _ => return Err(Malformed),
                };
                ReplyOutcome::Proved { prover, bound }
            }
            2 => ReplyOutcome::Exhausted(match r.get_u8()? {
                0 => Exhaustion::Timeout,
                1 => Exhaustion::Fuel,
                _ => return Err(Malformed),
            }),
            3 => ReplyOutcome::Panicked,
            _ => return Err(Malformed),
        };
        let fuel_spent = r.get_u64()?;
        let n = r.get_u32()? as usize;
        let mut diag = Vec::with_capacity(n.min(16));
        for _ in 0..n {
            let prover = ProverId::from_index(r.get_u8()? as usize).ok_or(Malformed)?;
            diag.push((prover, reason_from_code(r.get_u8()?)?));
        }
        let n = r.get_u32()? as usize;
        let mut stats = Vec::with_capacity(n.min(64));
        for _ in 0..n {
            let name = r.get_str()?.to_owned();
            stats.push((name, r.get_u64()?));
        }
        if !r.is_empty() {
            return Err(Malformed);
        }
        Ok(DecodedReply {
            outcome,
            fuel_spent,
            diag,
            stats,
        })
    }
}

// ---- worker-side entry point ---------------------------------------------

/// The hidden `worker` mode: serve prover attempts over stdin/stdout until
/// the parent closes the pipe. Panics inside a prover are caught and
/// reported as [`ReplyOutcome::Panicked`]; only an abort (or the parent's
/// SIGKILL) takes the process down.
pub fn worker_main() -> std::io::Result<()> {
    let opts = WorkerOptions::from_env();
    let beat = opts.heartbeat_interval;
    supervisor::serve(opts, |ctl, payload| {
        let req = match Request::decode(payload) {
            Ok(req) => req,
            Err(Malformed) => {
                let reply = DecodedReply {
                    outcome: ReplyOutcome::NoDecision,
                    fuel_spent: 0,
                    diag: Vec::new(),
                    stats: Vec::new(),
                };
                return WorkerReply {
                    payload: reply.encode(),
                    corrupt: false,
                };
            }
        };
        if req.chaos & FLAG_HANG != 0 {
            // A wedged prover: spin past every cooperative check. The
            // heartbeat thread keeps beating — this models a *computation*
            // hang, which only the parent's hard deadline can end.
            loop {
                std::thread::sleep(Duration::from_millis(50));
            }
        }
        if req.chaos & FLAG_DIE != 0 {
            std::process::abort();
        }
        if req.chaos & FLAG_OOM != 0 {
            // Allocate until the RLIMIT_AS ceiling aborts the process. If
            // no ceiling was configured, abort directly rather than
            // genuinely exhausting the host.
            if std::env::var(ENV_WORKER_MEM).is_ok() {
                let mut hoard: Vec<Vec<u8>> = Vec::new();
                loop {
                    hoard.push(vec![0xAB; 1 << 20]);
                    std::hint::black_box(&hoard);
                }
            }
            std::process::abort();
        }
        if req.chaos & FLAG_SLOW_BEAT != 0 {
            // Go quiet long enough for the parent to mark the lane
            // suspect, then answer normally: a slow worker is not a dead
            // worker, and must not lose its attempt.
            ctl.suppress(true);
            std::thread::sleep(beat * 6);
            ctl.suppress(false);
        }
        let stats = Stats::new();
        let mut diag = Diagnosis::default();
        let slice = Budget::new(Some(Duration::from_millis(req.deadline_ms)), req.fuel);
        let fuel_before = slice.fuel_remaining();
        let result = catch_unwind(AssertUnwindSafe(|| {
            portfolio_attempt(
                req.prover,
                &req.variants,
                req.fol_iterations as usize,
                &slice,
                &mut diag,
                &stats,
            )
        }));
        let outcome = match result {
            Ok(Ok(Some(Verdict::Proved { prover, bound }))) => {
                ReplyOutcome::Proved { prover, bound }
            }
            // Remotable provers never refute; a counter-model (or a bare
            // Unknown) from one would be a protocol bug. Degrade to
            // no-decision: the parent re-runs in-process if it matters.
            Ok(Ok(Some(_))) | Ok(Ok(None)) => ReplyOutcome::NoDecision,
            Ok(Err(why)) => ReplyOutcome::Exhausted(why),
            Err(_) => ReplyOutcome::Panicked,
        };
        let fuel_spent = if fuel_before == INFINITE_FUEL {
            0
        } else {
            fuel_before - slice.fuel_remaining()
        };
        let reply = DecodedReply {
            outcome,
            fuel_spent,
            diag: diag.attempts.clone(),
            stats: stats.snapshot(),
        };
        WorkerReply {
            payload: reply.encode(),
            corrupt: req.chaos & FLAG_GARBLE != 0,
        }
    })
}

// ---- parent-side backend -------------------------------------------------

/// The process-isolation execution backend: a [`Supervisor`] pool plus the
/// default wall-clock allowance granted to attempts whose obligation has
/// no deadline of its own (a hard ceiling is what makes SIGKILL possible;
/// "no deadline" cannot mean "hang forever" once hangs are survivable).
pub struct ProcessBackend {
    supervisor: Supervisor,
    attempt_deadline: Duration,
}

impl ProcessBackend {
    pub fn new(
        config: SupervisorConfig,
        sink: Option<Arc<dyn Sink>>,
        attempt_deadline: Duration,
    ) -> ProcessBackend {
        ProcessBackend {
            supervisor: Supervisor::new(config, sink),
            attempt_deadline,
        }
    }

    pub fn supervisor(&self) -> &Supervisor {
        &self.supervisor
    }

    /// The wall-clock allowance for one attempt: the slice's own deadline
    /// when it has one, capped by the backend ceiling.
    pub(crate) fn deadline_for(&self, slice: &Budget) -> Duration {
        match slice.time_remaining() {
            Some(left) => left.min(self.attempt_deadline),
            None => self.attempt_deadline,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nasty_form() -> Form {
        let x = Symbol::intern("x");
        let s = Symbol::intern("S");
        let next = Symbol::intern("Node.next");
        Form::Quant(
            QKind::All,
            vec![(x, Sort::Obj), (s, Sort::objset())],
            Rc::new(Form::implies(
                Form::And(vec![
                    Form::Binop(
                        BinOp::Elem,
                        Rc::new(Form::Var(x)),
                        Rc::new(Form::Binop(
                            BinOp::Union,
                            Rc::new(Form::Var(s)),
                            Rc::new(Form::FiniteSet(vec![Form::Null, Form::Var(x)])),
                        )),
                    ),
                    Form::Binop(
                        BinOp::Le,
                        Rc::new(Form::Unop(UnOp::Card, Rc::new(Form::Var(s)))),
                        Rc::new(Form::IntLit(-7)),
                    ),
                    Form::Tree(vec![Form::Var(next)]),
                ]),
                Form::Ite(
                    Rc::new(Form::BoolLit(false)),
                    Rc::new(Form::Old(Rc::new(Form::App(
                        Rc::new(Form::Var(next)),
                        vec![Form::Var(x)],
                    )))),
                    Rc::new(Form::Compr(
                        x,
                        Sort::Obj,
                        Rc::new(Form::Or(vec![
                            Form::EmptySet,
                            Form::Lambda(vec![(x, Sort::Var(3))], Rc::new(Form::Var(x))),
                        ])),
                    )),
                ),
            )),
        )
    }

    #[test]
    fn request_roundtrips_through_the_codec() {
        let mut sig = FxHashMap::default();
        sig.insert(Symbol::intern("Node.next"), Sort::field(Sort::Obj));
        sig.insert(
            Symbol::intern("p"),
            Sort::Fun(vec![Sort::Obj, Sort::Obj], Box::new(Sort::Bool)),
        );
        let req = Request {
            prover: ProverId::Smt,
            chaos: FLAG_GARBLE | FLAG_SLOW_BEAT,
            fuel: 123_456,
            deadline_ms: 9_999,
            fol_iterations: 700,
            variants: vec![(nasty_form(), sig.clone()), (Form::tt(), sig)],
        };
        let decoded = Request::decode(&req.encode()).expect("roundtrip");
        assert_eq!(decoded.prover, ProverId::Smt);
        assert_eq!(decoded.chaos, req.chaos);
        assert_eq!(decoded.fuel, req.fuel);
        assert_eq!(decoded.deadline_ms, req.deadline_ms);
        assert_eq!(decoded.fol_iterations, req.fol_iterations);
        assert_eq!(decoded.variants.len(), 2);
        assert_eq!(decoded.variants[0].0, req.variants[0].0);
        assert_eq!(decoded.variants[0].1, req.variants[0].1);
        assert_eq!(decoded.variants[1].0, Form::tt());
    }

    #[test]
    fn request_bytes_are_content_determined() {
        // Same logical request, differently-built signature maps: the
        // encoded bytes must agree (sorted signature entries), or request
        // frames would differ across runs for identical obligations.
        let mut sig_a = FxHashMap::default();
        sig_a.insert(Symbol::intern("a"), Sort::Int);
        sig_a.insert(Symbol::intern("b"), Sort::Bool);
        sig_a.insert(Symbol::intern("c"), Sort::Obj);
        let mut sig_b = FxHashMap::default();
        sig_b.insert(Symbol::intern("c"), Sort::Obj);
        sig_b.insert(Symbol::intern("b"), Sort::Bool);
        sig_b.insert(Symbol::intern("a"), Sort::Int);
        let mk = |sig: FxHashMap<Symbol, Sort>| Request {
            prover: ProverId::Lia,
            chaos: 0,
            fuel: INFINITE_FUEL,
            deadline_ms: 1000,
            fol_iterations: 1,
            variants: vec![(Form::tt(), sig)],
        };
        assert_eq!(mk(sig_a).encode(), mk(sig_b).encode());
    }

    #[test]
    fn reply_roundtrips_through_the_codec() {
        let reply = DecodedReply {
            outcome: ReplyOutcome::Proved {
                prover: ProverId::Fol,
                bound: Some(3),
            },
            fuel_spent: 42,
            diag: vec![
                (ProverId::Fol, FailureReason::GaveUp),
                (ProverId::Lia, FailureReason::Unsupported),
            ],
            stats: vec![("tried.fol".to_owned(), 2), ("proved.fol".to_owned(), 1)],
        };
        let decoded = DecodedReply::decode(&reply.encode()).expect("roundtrip");
        assert_eq!(
            decoded.outcome,
            ReplyOutcome::Proved {
                prover: ProverId::Fol,
                bound: Some(3),
            }
        );
        assert_eq!(decoded.fuel_spent, 42);
        assert_eq!(decoded.diag, reply.diag);
        assert_eq!(decoded.stats, reply.stats);
        for outcome in [
            ReplyOutcome::NoDecision,
            ReplyOutcome::Exhausted(Exhaustion::Timeout),
            ReplyOutcome::Exhausted(Exhaustion::Fuel),
            ReplyOutcome::Panicked,
        ] {
            let reply = DecodedReply {
                outcome,
                fuel_spent: 0,
                diag: Vec::new(),
                stats: Vec::new(),
            };
            let expect = reply.encode();
            assert_eq!(
                DecodedReply::decode(&expect).expect("roundtrip").encode(),
                expect
            );
        }
    }

    #[test]
    fn truncated_payloads_are_malformed_not_panics() {
        let req = Request {
            prover: ProverId::Hol,
            chaos: 0,
            fuel: 10,
            deadline_ms: 10,
            fol_iterations: 10,
            variants: vec![(nasty_form(), FxHashMap::default())],
        };
        let full = req.encode();
        for len in 0..full.len() {
            assert!(
                Request::decode(&full[..len]).is_err(),
                "prefix of {len} bytes decoded"
            );
        }
        // Trailing garbage is rejected too: a frame is exactly one request.
        let mut padded = full.clone();
        padded.push(0);
        assert!(Request::decode(&padded).is_err());
    }
}
