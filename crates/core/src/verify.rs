//! The end-to-end verification pipeline behind the [`Verifier`] session
//! API.
//!
//! Methods are independent verification units (§3 of the paper), so the
//! pipeline fans them out across a work-stealing pool and shares one
//! normalized-goal cache across the run. The parallel report is
//! bit-for-bit identical to the sequential one: obligations keep their
//! stable per-method indices, results come back in submission order, and
//! everything schedule-dependent (fresh-symbol suffixes, chaos decisions)
//! is keyed on obligation *content* rather than arrival order.
//!
//! Observability: when a [`Sink`] is configured, every run emits a typed
//! event stream — run / method / obligation / piece spans with prover
//! attempts, cache consultations, breaker transitions, retry escalations,
//! chaos injections, and watchdog checks inside them. Events are buffered
//! per method and assembled in submission order, then cache attribution
//! is rewritten to stream order ([`jahob_util::obs::canonicalize`]), so
//! the stream is bit-for-bit identical at any worker count. With no sink
//! configured the pipeline records nothing and each potential recording
//! site costs one pointer test.

use crate::adaptive::AdaptiveStats;
use crate::dispatcher::{Diagnosis, DispatchConfig, Dispatcher, ProverId, Verdict};
use crate::goal_cache::GoalCache;
use crate::worker::ProcessBackend;
use jahob_javalite::{parse_program, resolve, TypedProgram};
use jahob_util::chaos::FaultPlan;
use jahob_util::counters::Stats;
use jahob_util::json::{array, string as json_string, Obj};
use jahob_util::obs::{self, Event, Recorder, Sink, StderrSink};
use jahob_util::supervisor::SupervisorConfig;
use jahob_util::{pool, trace_enabled, Symbol};
use jahob_vcgen::method_obligations;
use std::collections::BTreeMap;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Where prover attempts execute.
///
/// `InProcess` is the classical path: every decision procedure runs on
/// the dispatching thread, guarded by `catch_unwind` and cooperative
/// budgets. `Process` moves the remotable provers into supervised child
/// processes (see [`jahob_util::supervisor`]): hangs are SIGKILLed at a
/// hard wall-clock deadline, memory is capped by `RLIMIT_AS`, and a
/// crash-looping lane is quarantined with graceful fallback to the
/// in-process path — verdicts never change, only survivability does.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Isolation {
    /// Run every prover on the dispatching thread (the default).
    #[default]
    InProcess,
    /// Run remotable provers in supervised worker processes.
    Process,
}

/// Pipeline configuration. Build one with [`Config::builder`] — the
/// builder is where the environment (`JAHOB_WORKERS`, `JAHOB_TRACE`) is
/// resolved, exactly once, into the explicit fields here; nothing on the
/// verification path reads an environment variable again.
#[derive(Clone)]
pub struct Config {
    pub dispatch: DispatchConfig,
    /// Worker threads for fanning methods out. Resolved by the builder
    /// (explicit value, else `JAHOB_WORKERS`, else 1 = sequential); a
    /// field value of `0` is treated as 1.
    pub workers: usize,
    /// Share a run-wide normalized-goal cache across methods, so
    /// alpha-equivalent obligations are dispatched once per run.
    pub goal_cache: bool,
    /// Reuse a cache across *runs* (warm re-verification): a [`Verifier`]
    /// session keeps this cache alive between `verify` calls so unchanged
    /// obligations replay their proofs instead of re-dispatching. `None`
    /// (the default) gives the session a private cache. Only consulted
    /// when `goal_cache` is on; poisoned entries are still guarded by the
    /// cross-check watchdog exactly as within a run.
    pub shared_cache: Option<Arc<GoalCache>>,
    /// Directory for the crash-safe persistent proof cache (see
    /// [`jahob_util::store`]). When set — explicitly or via `JAHOB_CACHE`,
    /// resolved once by the builder — the session's goal cache shadows
    /// this directory: surviving entries replay on open, proofs flush
    /// write-behind, and corruption degrades to a cold cache. Ignored
    /// when `goal_cache` is off or a `shared_cache` was supplied (the
    /// shared cache may itself be persistent; see
    /// [`GoalCache::open_persistent`]).
    pub cache_path: Option<PathBuf>,
    /// Where the run's event stream goes. `None` disables observability
    /// entirely (the fast path: one pointer test per potential event).
    /// The builder installs a [`StderrSink`] here when `JAHOB_TRACE` is
    /// set and no sink was given, so the old tracing flag keeps working —
    /// through the typed pipeline instead of scattered `eprintln!`s.
    pub sink: Option<Arc<dyn Sink>>,
    /// Execution backend for prover attempts. Resolved by the builder
    /// (explicit value, else `JAHOB_ISOLATION=process|in-process`, else
    /// in-process). `Process` only takes effect when `worker_program` is
    /// also resolved — the library never guesses a worker binary.
    pub isolation: Isolation,
    /// The worker executable for process isolation, invoked as
    /// `<program> worker`. Unset defers to `JAHOB_WORKER_BIN`; still
    /// unset means `Process` degrades to the in-process path. The
    /// library deliberately has no `current_exe()` default: re-exec'ing
    /// an arbitrary host binary that embeds jahob would fork-bomb, so
    /// only the CLI (which knows its binary serves worker mode) opts in.
    pub worker_program: Option<PathBuf>,
    /// `RLIMIT_AS` ceiling per worker child, in bytes. Unset defers to
    /// `JAHOB_WORKER_MEM`; still unset leaves children unlimited.
    pub worker_memory: Option<u64>,
    /// Hard wall-clock ceiling per supervised attempt — the SIGKILL
    /// deadline for obligations whose budget carries no deadline of its
    /// own. Unset defers to `JAHOB_WORKER_DEADLINE_MS`, else 10 s.
    pub worker_deadline: Duration,
    /// Learn per-(goal-class, prover) statistics and use them to seed
    /// each speculative race with the historically best prover first
    /// (see [`crate::adaptive`]). Only observable as wall-clock: the
    /// start order never changes what is committed, so reports and
    /// canonical streams are bit-for-bit identical cold vs. warm. The
    /// statistics persist under `<cache_path>/adaptive` when the session
    /// has a cache directory, else live for the session only. Resolved
    /// by the builder (explicit value, else `JAHOB_ADAPTIVE`, else off);
    /// racing itself is `DispatchConfig::racing` / `JAHOB_RACING`.
    pub adaptive: bool,
    /// Unix-domain socket path for the verification daemon
    /// (`jahob serve` / [`crate::service`]). Resolved by the builder
    /// (explicit value, else `JAHOB_SOCKET`, else none). Ignored by
    /// [`Verifier::verify`] itself — only the service layer binds it.
    pub socket: Option<PathBuf>,
    /// Admission-queue bound for the verification daemon: the maximum
    /// number of admitted-but-unfinished requests across all clients.
    /// A full queue sheds new submissions with a typed BUSY reply — an
    /// accepted request is never dropped. Resolved by the builder
    /// (explicit value, else `JAHOB_QUEUE_DEPTH`, else 32).
    pub queue_depth: usize,
}

impl fmt::Debug for Config {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Config")
            .field("dispatch", &self.dispatch)
            .field("workers", &self.workers)
            .field("goal_cache", &self.goal_cache)
            .field("shared_cache", &self.shared_cache)
            .field("cache_path", &self.cache_path)
            .field("sink", &self.sink.as_ref().map(|_| "Sink"))
            .field("isolation", &self.isolation)
            .field("worker_program", &self.worker_program)
            .field("worker_memory", &self.worker_memory)
            .field("worker_deadline", &self.worker_deadline)
            .field("adaptive", &self.adaptive)
            .field("socket", &self.socket)
            .field("queue_depth", &self.queue_depth)
            .finish()
    }
}

impl Default for Config {
    /// Equivalent to `Config::builder().build()`: environment resolved at
    /// construction time, not at use time.
    fn default() -> Self {
        Config::builder().build()
    }
}

impl Config {
    /// Start building a configuration. See [`ConfigBuilder`].
    pub fn builder() -> ConfigBuilder {
        ConfigBuilder::new()
    }

    /// The worker count this configuration will actually use. The
    /// environment was already resolved by the builder; this only guards
    /// against a hand-written `workers: 0`.
    pub fn effective_workers(&self) -> usize {
        self.workers.max(1)
    }
}

/// Fluent construction for [`Config`], and the one place the process
/// environment is consulted:
///
/// * `workers`: explicit value, else `JAHOB_WORKERS`, else 1;
/// * sink: explicit [`ConfigBuilder::sink`], else a [`StderrSink`] when
///   `JAHOB_TRACE` is set, else none;
/// * isolation: explicit [`ConfigBuilder::isolation`], else
///   `JAHOB_ISOLATION` (`process` / `in-process`), else in-process —
///   with the worker binary, memory ceiling, and attempt deadline from
///   `JAHOB_WORKER_BIN` / `JAHOB_WORKER_MEM` / `JAHOB_WORKER_DEADLINE_MS`
///   when not set on the builder;
/// * service: socket path from [`ConfigBuilder::socket`] else
///   `JAHOB_SOCKET`, admission-queue bound from
///   [`ConfigBuilder::queue_depth`] else `JAHOB_QUEUE_DEPTH`, else 32.
///
/// ```no_run
/// use std::sync::Arc;
/// let verifier = jahob::Config::builder()
///     .workers(8)
///     .goal_cache(true)
///     .sink(Arc::new(jahob::MemorySink::new()))
///     .build_verifier();
/// let report = verifier.verify("class C { }").unwrap();
/// ```
#[derive(Default)]
pub struct ConfigBuilder {
    dispatch: DispatchConfig,
    workers: Option<usize>,
    goal_cache: bool,
    shared_cache: Option<Arc<GoalCache>>,
    cache_path: Option<PathBuf>,
    sink: Option<Arc<dyn Sink>>,
    isolation: Option<Isolation>,
    worker_program: Option<PathBuf>,
    worker_memory: Option<u64>,
    worker_deadline: Option<Duration>,
    racing: Option<bool>,
    adaptive: Option<bool>,
    slicing: Option<bool>,
    socket: Option<PathBuf>,
    queue_depth: Option<usize>,
}

impl ConfigBuilder {
    pub fn new() -> ConfigBuilder {
        ConfigBuilder {
            dispatch: DispatchConfig::default(),
            workers: None,
            goal_cache: true,
            shared_cache: None,
            cache_path: None,
            sink: None,
            isolation: None,
            worker_program: None,
            worker_memory: None,
            worker_deadline: None,
            racing: None,
            adaptive: None,
            slicing: None,
            socket: None,
            queue_depth: None,
        }
    }

    /// Worker threads for the method fan-out. Unset defers to
    /// `JAHOB_WORKERS` (resolved once, in [`ConfigBuilder::build`]).
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = Some(workers);
        self
    }

    /// Enable/disable the run-wide normalized-goal cache (default: on).
    pub fn goal_cache(mut self, on: bool) -> Self {
        self.goal_cache = on;
        self
    }

    /// Deterministic fault-injection plan for chaos testing.
    pub fn fault_plan(mut self, plan: Arc<FaultPlan>) -> Self {
        self.dispatch.fault_plan = Some(plan);
        self
    }

    /// Event sink for the run's observability stream.
    pub fn sink(mut self, sink: Arc<dyn Sink>) -> Self {
        self.sink = Some(sink);
        self
    }

    /// Cache shared across sessions/runs (warm re-verification).
    pub fn shared_cache(mut self, cache: Arc<GoalCache>) -> Self {
        self.shared_cache = Some(cache);
        self
    }

    /// Directory for the crash-safe persistent proof cache. Unset defers
    /// to `JAHOB_CACHE` (resolved once, in [`ConfigBuilder::build`]);
    /// neither means no persistence.
    pub fn cache_path(mut self, dir: impl Into<PathBuf>) -> Self {
        self.cache_path = Some(dir.into());
        self
    }

    /// Replace the whole portfolio configuration (ablation knobs,
    /// budgets, breakers, watchdog).
    pub fn dispatch(mut self, dispatch: DispatchConfig) -> Self {
        self.dispatch = dispatch;
        self
    }

    /// Execution backend for prover attempts. Unset defers to
    /// `JAHOB_ISOLATION` (`process` / `in-process`, resolved once in
    /// [`ConfigBuilder::build`]), else in-process.
    pub fn isolation(mut self, isolation: Isolation) -> Self {
        self.isolation = Some(isolation);
        self
    }

    /// Worker executable for [`Isolation::Process`], invoked as
    /// `<program> worker`. Unset defers to `JAHOB_WORKER_BIN`.
    pub fn worker_program(mut self, program: impl Into<PathBuf>) -> Self {
        self.worker_program = Some(program.into());
        self
    }

    /// Per-child `RLIMIT_AS` ceiling in bytes for process isolation.
    /// Unset defers to `JAHOB_WORKER_MEM`.
    pub fn worker_memory(mut self, bytes: u64) -> Self {
        self.worker_memory = Some(bytes);
        self
    }

    /// Hard wall-clock ceiling per supervised attempt. Unset defers to
    /// `JAHOB_WORKER_DEADLINE_MS`, else 10 s.
    pub fn worker_deadline(mut self, deadline: Duration) -> Self {
        self.worker_deadline = Some(deadline);
        self
    }

    /// Race the remotable provers speculatively on eligible obligations
    /// (sets [`DispatchConfig::racing`]). Unset defers to `JAHOB_RACING`
    /// (`1`/`true`/`on` enables, resolved once in
    /// [`ConfigBuilder::build`]), else whatever the dispatch config says
    /// (off by default). Verdicts and canonical streams are bit-for-bit
    /// identical racing on or off — racing only moves wall-clock.
    pub fn racing(mut self, on: bool) -> Self {
        self.racing = Some(on);
        self
    }

    /// Adaptive race ordering from learned per-goal-class statistics.
    /// Unset defers to `JAHOB_ADAPTIVE`, else off.
    pub fn adaptive(mut self, on: bool) -> Self {
        self.adaptive = Some(on);
        self
    }

    /// Relevance-slice each obligation piece before dispatch (sets
    /// [`DispatchConfig::slicing`]): drop hypotheses outside the goal's
    /// symbol cone and prove the sliced sequent first, widening on
    /// `Unknown` with the full piece as the last rung. Unset defers to
    /// `JAHOB_SLICING` (`1`/`true`/`on` enables, resolved once in
    /// [`ConfigBuilder::build`]), else whatever the dispatch config says
    /// (off by default). Slicing preserves every verdict's classification
    /// (proved/refuted/unknown, with unknown diagnoses bit-identical);
    /// `Proved` attributions may move to a cheaper prover — that is the
    /// point.
    pub fn slicing(mut self, on: bool) -> Self {
        self.slicing = Some(on);
        self
    }

    /// Unix-domain socket path for the verification daemon. Unset defers
    /// to `JAHOB_SOCKET` (resolved once, in [`ConfigBuilder::build`]).
    pub fn socket(mut self, path: impl Into<PathBuf>) -> Self {
        self.socket = Some(path.into());
        self
    }

    /// Admission-queue bound for the verification daemon. Unset defers
    /// to `JAHOB_QUEUE_DEPTH`, else 32; zero is treated as 1.
    pub fn queue_depth(mut self, depth: usize) -> Self {
        self.queue_depth = Some(depth);
        self
    }

    /// Resolve the environment and produce the final [`Config`].
    pub fn build(self) -> Config {
        let workers = self.workers.unwrap_or_else(|| {
            std::env::var("JAHOB_WORKERS")
                .ok()
                .and_then(|raw| raw.trim().parse::<usize>().ok())
                .filter(|&w| w > 0)
                .unwrap_or(1)
        });
        let sink = self
            .sink
            .or_else(|| trace_enabled().then(|| Arc::new(StderrSink::new()) as Arc<dyn Sink>));
        let cache_path = self
            .cache_path
            .or_else(|| std::env::var_os("JAHOB_CACHE").map(PathBuf::from));
        let isolation = self.isolation.unwrap_or_else(|| {
            match std::env::var("JAHOB_ISOLATION")
                .ok()
                .as_deref()
                .map(str::trim)
            {
                Some("process") => Isolation::Process,
                // Anything else — unset, `in-process`, or garbage — is the
                // safe classical path; an env typo must not fork children.
                _ => Isolation::InProcess,
            }
        });
        let worker_program = self
            .worker_program
            .or_else(|| std::env::var_os("JAHOB_WORKER_BIN").map(PathBuf::from));
        let worker_memory = self.worker_memory.or_else(|| {
            std::env::var("JAHOB_WORKER_MEM")
                .ok()
                .and_then(|raw| raw.trim().parse::<u64>().ok())
                .filter(|&b| b > 0)
        });
        let worker_deadline = self
            .worker_deadline
            .or_else(|| {
                std::env::var("JAHOB_WORKER_DEADLINE_MS")
                    .ok()
                    .and_then(|raw| raw.trim().parse::<u64>().ok())
                    .filter(|&ms| ms > 0)
                    .map(Duration::from_millis)
            })
            .unwrap_or(Duration::from_secs(10));
        let mut dispatch = self.dispatch;
        // Only apply when something was said: an explicit `.dispatch()`
        // carrying `racing: true` must not be clobbered by an unset env.
        if let Some(racing) = self.racing.or_else(|| env_flag("JAHOB_RACING")) {
            dispatch.racing = racing;
        }
        if let Some(slicing) = self.slicing.or_else(|| env_flag("JAHOB_SLICING")) {
            dispatch.slicing = slicing;
        }
        let adaptive = self
            .adaptive
            .or_else(|| env_flag("JAHOB_ADAPTIVE"))
            .unwrap_or(false);
        let socket = self
            .socket
            .or_else(|| std::env::var_os("JAHOB_SOCKET").map(PathBuf::from));
        let queue_depth = self
            .queue_depth
            .or_else(|| {
                std::env::var("JAHOB_QUEUE_DEPTH")
                    .ok()
                    .and_then(|raw| raw.trim().parse::<usize>().ok())
                    .filter(|&d| d > 0)
            })
            .unwrap_or(32)
            .max(1);
        Config {
            dispatch,
            workers: workers.max(1),
            goal_cache: self.goal_cache,
            shared_cache: self.shared_cache,
            cache_path,
            sink,
            isolation,
            worker_program,
            worker_memory,
            worker_deadline,
            adaptive,
            socket,
            queue_depth,
        }
    }

    /// Shorthand for `Verifier::new(self.build())`.
    pub fn build_verifier(self) -> Verifier {
        Verifier::new(self.build())
    }
}

/// A tri-state boolean environment flag: `None` when unset or garbage,
/// so a missing variable never overrides an explicit builder/dispatch
/// choice.
fn env_flag(name: &str) -> Option<bool> {
    match std::env::var(name)
        .ok()?
        .trim()
        .to_ascii_lowercase()
        .as_str()
    {
        "1" | "true" | "on" | "yes" => Some(true),
        "0" | "false" | "off" | "no" => Some(false),
        _ => None,
    }
}

/// Per-request overrides for [`Verifier::verify_with`]. Defaults to "no
/// overrides": `Verifier::verify(src)` is exactly
/// `verify_with(src, &RequestOptions::default())`.
///
/// Deliberately limited to non-semantic knobs (budget and stream
/// routing); anything that changes *what is proved* belongs in the
/// session's [`Config`], where the cache digest accounts for it.
#[derive(Clone, Default)]
pub struct RequestOptions {
    /// Per-obligation wall-clock ceiling for this request (overrides
    /// `DispatchConfig::obligation_timeout`). Deadlines are excluded
    /// from the cache digest by design, so a deadline never forks the
    /// session's warm cache.
    pub deadline: Option<Duration>,
    /// Event sink for this request's stream (overrides `Config::sink`).
    /// The daemon installs a per-client sink here so each request can
    /// stream its own JSONL while the session stays shared.
    pub sink: Option<Arc<dyn Sink>>,
}

/// A verification session: owns the configuration, the event sink, and
/// the goal cache across `verify` calls, so re-verifying after an edit
/// replays every unchanged proof (the interactive loop of §6). Worker
/// threads are spawned per call at the session's configured width — the
/// formula ASTs are deliberately `Rc`-based and thread-local, so workers
/// re-parse per run and there is no state worth pinning to live threads
/// between calls.
///
/// `Verifier` is the one front door: the CLI, the `verify_file`
/// example, and the verification daemon ([`crate::service`]) all build
/// sessions here and nowhere else.
pub struct Verifier {
    config: Config,
    /// The session cache (present iff `config.goal_cache`): promoted from
    /// `config.shared_cache` or created fresh, and kept alive across
    /// `verify` calls.
    cache: Option<Arc<GoalCache>>,
    /// The process-isolation backend (present iff the config asked for
    /// [`Isolation::Process`] *and* named a worker binary). Session-owned
    /// so worker children, crash-window history, and quarantine decisions
    /// survive across `verify` calls exactly like the goal cache.
    backend: Option<Arc<ProcessBackend>>,
    /// The adaptive race-ordering statistics (present iff
    /// `config.adaptive`): store-backed under `<cache_path>/adaptive`
    /// when the session has a cache directory, else in-memory. Session-
    /// owned so warmth accumulates across `verify` calls.
    adaptive: Option<Arc<AdaptiveStats>>,
}

/// The invalidation key for persisted cache entries: the semantic
/// dispatch-config digest folded with the store format version and the
/// crate version, so entries recorded by a different prover configuration
/// *or a different build of the code* are never replayed. (Fingerprints
/// already fold the config digest; the manifest-level key adds the
/// code-version axis and makes the reset observable instead of silently
/// missing on every key.)
fn persistent_digest(dispatch: &DispatchConfig) -> u64 {
    use jahob_util::chaos::splitmix64;
    let mut d = dispatch.cache_digest() ^ splitmix64(jahob_util::store::FORMAT_VERSION as u64);
    for b in env!("CARGO_PKG_VERSION").bytes() {
        d = splitmix64(d ^ b as u64);
    }
    d
}

impl Verifier {
    pub fn new(config: Config) -> Verifier {
        let cache = config.goal_cache.then(|| {
            if let Some(shared) = config.shared_cache.clone() {
                // An explicit shared cache wins; it may itself be
                // persistent (see `GoalCache::open_persistent`).
                shared
            } else if let Some(dir) = &config.cache_path {
                Arc::new(GoalCache::open_persistent(
                    dir,
                    persistent_digest(&config.dispatch),
                    config.dispatch.fault_plan.clone(),
                    config.sink.clone(),
                ))
            } else {
                Arc::new(GoalCache::new())
            }
        });
        let backend = match (&config.isolation, &config.worker_program) {
            (Isolation::Process, Some(program)) => {
                let mut sup = SupervisorConfig::new(program);
                sup.memory_limit = config.worker_memory;
                Some(Arc::new(ProcessBackend::new(
                    sup,
                    config.sink.clone(),
                    config.worker_deadline,
                )))
            }
            // `Process` without a worker binary degrades to the classical
            // path rather than guessing one (see `Config::worker_program`).
            _ => None,
        };
        let adaptive = config.adaptive.then(|| {
            if let Some(dir) = &config.cache_path {
                Arc::new(AdaptiveStats::open_persistent(
                    &dir.join("adaptive"),
                    persistent_digest(&config.dispatch),
                    config.dispatch.fault_plan.clone(),
                    config.sink.clone(),
                ))
            } else {
                Arc::new(AdaptiveStats::in_memory())
            }
        });
        Verifier {
            config,
            cache,
            backend,
            adaptive,
        }
    }

    pub fn config(&self) -> &Config {
        &self.config
    }

    /// The session's goal cache, if caching is enabled — pass it to
    /// another session's builder via `shared_cache` to share warmth.
    pub fn goal_cache(&self) -> Option<&Arc<GoalCache>> {
        self.cache.as_ref()
    }

    /// Verify a `.javax` source: parse, resolve, generate obligations,
    /// dispatch each to the portfolio — fanning methods out across the
    /// worker pool when the session is configured wider than one.
    pub fn verify(&self, src: &str) -> Result<VerifyReport, VerifyError> {
        self.verify_with(src, &RequestOptions::default())
    }

    /// [`Verifier::verify`] with per-request overrides — the service
    /// layer's entry point, public for embedders with the same needs.
    ///
    /// Only *non-semantic* knobs are overridable per request: a budget
    /// deadline (a proof found under one budget is a proof under any
    /// other, so per-request deadlines never poison the goal cache —
    /// see `DispatchConfig::cache_digest`) and the event sink (where
    /// this request's stream goes, not what it contains). The session's
    /// warm state — goal cache, persistent store, adaptive statistics,
    /// supervised lanes — is shared untouched.
    pub fn verify_with(
        &self,
        src: &str,
        options: &RequestOptions,
    ) -> Result<VerifyReport, VerifyError> {
        let mut config;
        let config = if options.deadline.is_some() || options.sink.is_some() {
            config = self.config.clone();
            if let Some(deadline) = options.deadline {
                config.dispatch.obligation_timeout = Some(deadline);
            }
            if let Some(sink) = &options.sink {
                config.sink = Some(Arc::clone(sink));
            }
            &config
        } else {
            &self.config
        };
        run_pipeline(
            src,
            config,
            self.cache.as_ref(),
            self.backend.as_ref(),
            self.adaptive.as_ref(),
        )
    }

    /// The session's process-isolation backend, if one is active —
    /// `Some` iff the config asked for [`Isolation::Process`] and named
    /// a worker binary.
    pub fn process_backend(&self) -> Option<&Arc<ProcessBackend>> {
        self.backend.as_ref()
    }

    /// The session's adaptive race-ordering statistics, if enabled.
    pub fn adaptive_stats(&self) -> Option<&Arc<AdaptiveStats>> {
        self.adaptive.as_ref()
    }
}

/// Rendering options for report JSON — the one switch shared by the
/// CLI (`--json` / `--json-timing`), the daemon's REPORT frames, and
/// the golden tests, so every consumer spells "stable vs. timed" the
/// same way and the serializations cannot drift apart.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReportRender {
    /// Include wall-clock fields (per-obligation `millis`), the
    /// schedule-dependent counters, and the quarantine list. Off is the
    /// stable view: two runs of the same code serialize to identical
    /// bytes at any worker count, cold or warm.
    pub timing: bool,
}

impl ReportRender {
    /// The diffable view: no wall-clock, no schedule-dependent state.
    pub const STABLE: ReportRender = ReportRender { timing: false };
    /// Everything, wall-clock and schedule-dependent state included.
    pub const TIMING: ReportRender = ReportRender { timing: true };
}

/// Report for one obligation.
#[derive(Clone, Debug)]
pub struct ObligationReport {
    pub label: String,
    pub verdict: VerdictSummary,
    pub millis: u128,
}

/// Printable verdict. `Unknown` carries the dispatcher's failure taxonomy
/// so the report says which provers were tried and why each one stopped.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum VerdictSummary {
    Proved {
        prover: ProverId,
        bound: Option<u32>,
    },
    Refuted,
    Unknown(Diagnosis),
}

impl VerdictSummary {
    pub fn is_unknown(&self) -> bool {
        matches!(self, VerdictSummary::Unknown(_))
    }

    /// Structured JSON: `{"kind": ..., ...}` with the prover/bound on
    /// proofs and the full failure taxonomy on unknowns.
    pub fn to_json(&self, render: ReportRender) -> String {
        match self {
            VerdictSummary::Proved { prover, bound } => Obj::new()
                .str("kind", "proved")
                .str("prover", prover.name())
                .opt_u64("bound", bound.map(u64::from))
                .finish(),
            VerdictSummary::Refuted => Obj::new().str("kind", "refuted").finish(),
            VerdictSummary::Unknown(diag) => Obj::new()
                .str("kind", "unknown")
                .raw("diagnosis", &diag.to_json(render))
                .finish(),
        }
    }
}

impl fmt::Display for VerdictSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerdictSummary::Proved {
                prover,
                bound: None,
            } => {
                write!(f, "proved [{prover}]")
            }
            VerdictSummary::Proved {
                prover,
                bound: Some(b),
            } => write!(f, "proved [{prover}, universe ≤ {b}]"),
            VerdictSummary::Refuted => write!(f, "REFUTED (counter-model)"),
            VerdictSummary::Unknown(diag) => write!(f, "unknown ({diag})"),
        }
    }
}

/// Report for one method.
#[derive(Clone, Debug)]
pub struct MethodReport {
    pub class: Symbol,
    pub method: Symbol,
    pub obligations: Vec<ObligationReport>,
    /// Set when this method's VC generation or dispatch died (error or
    /// panic). The method is reported as failed — never silently verified —
    /// while the rest of the run proceeds.
    pub error: Option<String>,
}

impl MethodReport {
    pub fn all_proved(&self) -> bool {
        self.error.is_none()
            && self
                .obligations
                .iter()
                .all(|o| matches!(o.verdict, VerdictSummary::Proved { .. }))
    }

    pub fn any_refuted(&self) -> bool {
        self.obligations
            .iter()
            .any(|o| o.verdict == VerdictSummary::Refuted)
    }

    fn status(&self) -> &'static str {
        if self.all_proved() {
            "verified"
        } else if self.any_refuted() {
            "refuted"
        } else {
            "incomplete"
        }
    }

    /// One stable JSON object per method. [`ReportRender::TIMING`] adds
    /// the per-obligation wall-clock (`millis`); the stable view omits
    /// it so two runs of the same code diff byte-for-byte.
    pub fn to_json(&self, render: ReportRender) -> String {
        let obligations = array(self.obligations.iter().map(|o| {
            let o_json = Obj::new()
                .str("label", &o.label)
                .raw("verdict", &o.verdict.to_json(render));
            if render.timing {
                o_json.u64("millis", o.millis as u64).finish()
            } else {
                o_json.finish()
            }
        }));
        Obj::new()
            .str("class", self.class.as_str())
            .str("method", self.method.as_str())
            .str("status", self.status())
            .opt_str("error", self.error.as_deref())
            .raw("obligations", &obligations)
            .finish()
    }
}

/// Whole-program report.
#[derive(Clone, Debug)]
pub struct VerifyReport {
    pub methods: Vec<MethodReport>,
    /// Run-wide dispatcher counters, summed over every method's
    /// dispatcher (cache hits/misses, per-prover outcomes, chaos
    /// injections, breaker transitions, …) plus the pool's task/steal
    /// tallies when the run was parallel.
    pub stats: BTreeMap<String, u64>,
    /// Supervisor lanes quarantined by crash-loop detection, as of the
    /// end of the run (empty without process isolation). Verdicts are
    /// unaffected — quarantined lanes fall back to the in-process path —
    /// but the degradation is surfaced here so operators see it without
    /// digging through the event stream. Excluded from the stable report
    /// sections: *when* a lane crossed its crash threshold depends on
    /// scheduling, so two otherwise-identical runs may disagree.
    pub quarantined: Vec<String>,
}

/// A stat name whose value legitimately varies run-to-run or with the
/// worker count: wall-clock tallies, the pool's scheduling counters, and
/// the persistence layer's `store.*`/`sink.*` counters (those depend on
/// what was on disk *before* the run, so a warm report keeps its stable
/// sections identical to a cold one).
fn unstable_stat(name: &str) -> bool {
    name.contains("time")
        || name.contains("micros")
        || name.contains("millis")
        || name.starts_with("pool.")
        || name.starts_with("store.")
        || name.starts_with("sink.")
        || name.starts_with("supervisor.")
        // Race and adaptive counters depend on scheduling and on what
        // statistics were learned before the run; the determinism
        // contract is that everything *outside* these groups is
        // identical racing on/off, cold or warm.
        || name.starts_with("race.")
        || name.starts_with("adaptive.")
}

impl VerifyReport {
    pub fn all_proved(&self) -> bool {
        self.methods.iter().all(MethodReport::all_proved)
    }

    /// Schedule-independent view of the report, for asserting that two
    /// runs (sequential vs. parallel, different worker counts) agree:
    /// methods, obligations, verdicts, diagnoses, pipeline errors, and
    /// every order-free counter. Wall-clock and pool-scheduling counters
    /// are excluded — per-obligation `millis`, any stat whose name
    /// mentions `time`/`micros`/`millis`, and the `pool.*` group
    /// legitimately vary between runs.
    pub fn deterministic_lines(&self) -> Vec<String> {
        let mut lines = Vec::new();
        for m in &self.methods {
            lines.push(format!("{}.{} error={:?}", m.class, m.method, m.error));
            for o in &m.obligations {
                lines.push(format!("  {} :: {}", o.label, o.verdict));
            }
        }
        for (name, value) in &self.stats {
            if unstable_stat(name) {
                continue;
            }
            lines.push(format!("stat {name} = {value}"));
        }
        lines
    }

    pub fn method(&self, class: &str, method: &str) -> Option<&MethodReport> {
        self.methods
            .iter()
            .find(|m| m.class.as_str() == class && m.method.as_str() == method)
    }

    /// Count of (proved, refuted, unknown) obligations.
    pub fn tally(&self) -> (usize, usize, usize) {
        let mut proved = 0;
        let mut refuted = 0;
        let mut unknown = 0;
        for m in &self.methods {
            for o in &m.obligations {
                match &o.verdict {
                    VerdictSummary::Proved { .. } => proved += 1,
                    VerdictSummary::Refuted => refuted += 1,
                    VerdictSummary::Unknown(_) => unknown += 1,
                }
            }
        }
        (proved, refuted, unknown)
    }

    /// Structural JSON for CI, benches, the daemon's REPORT frames, and
    /// golden tests to diff: methods, obligations, verdicts, diagnoses,
    /// tally, and counters. With [`ReportRender::STABLE`], wall-clock
    /// fields and schedule-dependent counters are omitted, so two runs
    /// of the same code produce identical bytes at any worker count;
    /// [`ReportRender::TIMING`] includes everything.
    pub fn to_json(&self, render: ReportRender) -> String {
        let (proved, refuted, unknown) = self.tally();
        let tally = Obj::new()
            .u64("proved", proved as u64)
            .u64("refuted", refuted as u64)
            .u64("unknown", unknown as u64)
            .finish();
        let mut stats = Obj::new();
        for (name, value) in &self.stats {
            if !render.timing && unstable_stat(name) {
                continue;
            }
            stats = stats.u64(name, *value);
        }
        let mut obj = Obj::new()
            .raw(
                "methods",
                &array(self.methods.iter().map(|m| m.to_json(render))),
            )
            .raw("tally", &tally)
            .raw("stats", &stats.finish());
        if render.timing {
            obj = obj.raw(
                "quarantined",
                &array(self.quarantined.iter().map(|lane| json_string(lane))),
            );
        }
        obj.finish()
    }
}

impl fmt::Display for VerifyReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for m in &self.methods {
            let status = if m.all_proved() {
                "VERIFIED"
            } else if m.any_refuted() {
                "REFUTED"
            } else {
                "INCOMPLETE"
            };
            writeln!(f, "{}.{}: {status}", m.class, m.method)?;
            if let Some(err) = &m.error {
                writeln!(f, "    (pipeline failure: {err})")?;
            }
            for o in &m.obligations {
                writeln!(f, "    {:<55} {} ({} ms)", o.label, o.verdict, o.millis)?;
            }
            if m.obligations.is_empty() && m.error.is_none() {
                writeln!(f, "    (all obligations discharged during generation)")?;
            }
        }
        for lane in &self.quarantined {
            writeln!(
                f,
                "warning: prover lane `{lane}` quarantined (crash loop); \
                 its attempts ran in-process"
            )?;
        }
        let (p, r, u) = self.tally();
        writeln!(f, "total: {p} proved, {r} refuted, {u} unknown")
    }
}

/// Pipeline errors.
#[derive(Debug)]
pub enum VerifyError {
    Frontend(jahob_javalite::FrontendError),
    Vcgen(jahob_vcgen::VcgenError),
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::Frontend(e) => write!(f, "{e}"),
            VerifyError::Vcgen(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for VerifyError {}

/// The pipeline body behind [`Verifier::verify`] /
/// [`Verifier::verify_with`].
fn run_pipeline(
    src: &str,
    config: &Config,
    cache: Option<&Arc<GoalCache>>,
    backend: Option<&Arc<ProcessBackend>>,
    adaptive: Option<&Arc<AdaptiveStats>>,
) -> Result<VerifyReport, VerifyError> {
    let run_started = Instant::now();
    let observing = config.sink.is_some();
    let program = parse_program(src).map_err(VerifyError::Frontend)?;
    let typed = resolve(&program).map_err(VerifyError::Frontend)?;

    // Stable job list: (class index, method index) in source order. The
    // pool returns results in submission order, so the report layout is
    // identical no matter which worker ran what.
    let jobs: Vec<(usize, usize)> = typed
        .classes
        .iter()
        .enumerate()
        .flat_map(|(ci, class)| {
            class
                .methods
                .iter()
                .enumerate()
                .filter(|(_, m)| !m.contract.assumed)
                .map(move |(mi, _)| (ci, mi))
        })
        .collect();
    let workers = config.effective_workers().min(jobs.len().max(1));

    let run_stats = Stats::new();
    type MethodOutcome = (MethodReport, Vec<(String, u64)>, Vec<Event>);
    let results: Vec<MethodOutcome> = if workers <= 1 {
        jobs.iter()
            .enumerate()
            .map(|(i, &(ci, mi))| {
                verify_method(
                    &typed, ci, mi, i, config, cache, backend, adaptive, observing,
                )
            })
            .collect()
    } else {
        // Formula ASTs are `Rc`-based and must not cross threads, so each
        // worker re-parses and re-resolves its own copy of the program
        // (symbols intern globally, so `Symbol`s agree across workers) and
        // only `Send` report data comes back. Verdicts cannot depend on
        // which worker ran a method: the dispatcher canonicalizes every
        // goal before proving, so fresh-counter drift between workers
        // never reaches a prover.
        pool::run_with_local_observed(
            workers,
            None,
            Some(&run_stats),
            jobs.iter().copied().enumerate().collect(),
            |_worker| {
                let program = parse_program(src).expect("parsed on the caller thread");
                resolve(&program).expect("resolved on the caller thread")
            },
            |typed, _cx, (i, (ci, mi))| {
                verify_method(
                    typed, ci, mi, i, config, cache, backend, adaptive, observing,
                )
            },
        )
        .into_iter()
        .enumerate()
        .map(|(i, outcome)| {
            outcome.unwrap_or_else(|task_panic| {
                // The pool isolates a panicking method; degrade it to a
                // diagnosed failure just like the sequential path does.
                let (ci, mi) = jobs[i];
                let m = &typed.classes[ci].methods[mi];
                let error = format!("worker panicked: {}", task_panic.message);
                let mut events = Vec::new();
                if observing {
                    events.push(Event::MethodStart {
                        index: i as u64,
                        name: format!("{}.{}", m.class, m.name),
                    });
                    events.push(Event::MethodEnd {
                        index: i as u64,
                        error: Some(error.clone()),
                        micros: 0,
                    });
                }
                (
                    MethodReport {
                        class: m.class,
                        method: m.name,
                        obligations: Vec::new(),
                        error: Some(error),
                    },
                    Vec::new(),
                    events,
                )
            })
        })
        .collect()
    };

    let mut methods = Vec::new();
    let mut stats = BTreeMap::new();
    let mut events: Vec<Event> = Vec::new();
    if observing {
        events.push(Event::RunStart {
            methods: jobs.len() as u64,
            workers: workers as u64,
        });
    }
    for (report, method_stats, method_events) in results {
        methods.push(report);
        for (name, value) in method_stats {
            *stats.entry(name).or_insert(0) += value;
        }
        events.extend(method_events);
    }
    for (name, value) in run_stats.snapshot() {
        *stats.entry(name).or_insert(0) += value;
    }
    // Persistence counters are session-cumulative (the store outlives
    // individual runs), so they overwrite rather than accumulate; they
    // are marked unstable and never reach the stable report sections.
    if let Some(cache) = cache {
        // Make this run's proofs durable before reporting: a crash after
        // the report must not lose what the report claims was verified.
        cache.flush_persistent();
        for (name, value) in cache.persist_stats() {
            stats.insert(name, value);
        }
    }
    // Adaptive statistics are session-cumulative too: flush the learned
    // ordering so the next (session or process) run starts warm, and
    // overwrite the `adaptive.*` counters like the persistence ones.
    if let Some(adaptive) = adaptive {
        adaptive.flush();
        for (name, value) in adaptive.persist_stats() {
            stats.insert(name, value);
        }
    }
    // Supervisor counters are session-cumulative like the persistence
    // counters (the backend outlives individual runs), so they overwrite
    // rather than accumulate; they too are marked unstable.
    let mut quarantined = Vec::new();
    if let Some(backend) = backend {
        for (name, value) in backend.supervisor().stats_snapshot() {
            stats.insert(name, value);
        }
        quarantined = backend.supervisor().quarantined_lanes();
    }
    let report = VerifyReport {
        methods,
        stats,
        quarantined,
    };

    if let Some(sink) = &config.sink {
        let (proved, refuted, unknown) = report.tally();
        events.push(Event::RunEnd {
            proved: proved as u64,
            refuted: refuted as u64,
            unknown: unknown as u64,
            micros: run_started.elapsed().as_micros() as u64,
        });
        // Rewrite shared-cache hit/miss attribution to stream order so
        // the emitted stream is identical at any worker count.
        for event in obs::canonicalize(events) {
            sink.emit(&event);
        }
        sink.flush();
    }
    Ok(report)
}

/// Verify one method with its own dispatcher (fresh circuit-breaker bank,
/// so breaker state never couples methods across scheduling orders),
/// sharing the run-wide goal cache. Returns the method report, the
/// dispatcher's counter snapshot for run-level aggregation, and the
/// method's buffered event stream (empty when not observing).
///
/// Per-method graceful degradation: a method whose VC generation or
/// dispatch dies (error *or* panic) becomes a diagnosed failure in the
/// report while every other method still verifies. One bad method — or
/// one bug in a reasoning substrate that escapes the dispatcher's
/// per-attempt isolation — must not abort the whole run.
#[allow(clippy::too_many_arguments)]
fn verify_method(
    typed: &TypedProgram,
    class_index: usize,
    method_index: usize,
    run_index: usize,
    config: &Config,
    cache: Option<&Arc<GoalCache>>,
    backend: Option<&Arc<ProcessBackend>>,
    adaptive: Option<&Arc<AdaptiveStats>>,
    observing: bool,
) -> (MethodReport, Vec<(String, u64)>, Vec<Event>) {
    let method_started = Instant::now();
    let m = &typed.classes[class_index].methods[method_index];
    let recorder = if observing {
        Recorder::buffered()
    } else {
        Recorder::disabled()
    };
    recorder.record_with(|| Event::MethodStart {
        index: run_index as u64,
        name: format!("{}.{}", m.class, m.name),
    });
    // The VC generator already unfolded each class's own abstraction
    // functions; clients reason abstractly, so the dispatcher gets no
    // definitions (unfolding foreign private vardefs would both break
    // modularity and blow up client obligations).
    let mut dispatcher = Dispatcher::new(typed.sig.clone(), jahob_util::FxHashMap::default());
    dispatcher.config = config.dispatch.clone();
    dispatcher.cache = cache.map(Arc::clone);
    dispatcher.supervisor = backend.map(Arc::clone);
    dispatcher.recorder = recorder.clone();
    // Race events (`race.*`) are schedule-dependent by construction, so
    // they bypass the canonicalized recorder stream and go straight to
    // the sink; adaptive statistics are session-owned like the cache.
    dispatcher.raw_sink = config.sink.clone();
    dispatcher.adaptive = adaptive.map(Arc::clone);

    let mut report = MethodReport {
        class: m.class,
        method: m.name,
        obligations: Vec::new(),
        error: None,
    };
    let vcs = catch_unwind(AssertUnwindSafe(|| method_obligations(typed, m)));
    let mv = match vcs {
        Ok(Ok(mv)) => Some(mv),
        Ok(Err(e)) => {
            report.error = Some(format!("VC generation failed: {e}"));
            None
        }
        Err(panic) => {
            report.error = Some(format!("VC generation panicked: {}", panic_message(&panic)));
            None
        }
    };
    if let Some(mv) = mv {
        for (oi, ob) in mv.obligations.iter().enumerate() {
            recorder.record_with(|| Event::ObligationStart {
                index: oi as u64,
                label: ob.label.clone(),
                size: ob.form.size() as u64,
            });
            let start = Instant::now();
            let verdict = catch_unwind(AssertUnwindSafe(|| dispatcher.prove(&ob.form)));
            let millis = start.elapsed().as_millis();
            let summary = match verdict {
                Ok(Verdict::Proved { prover, bound }) => VerdictSummary::Proved { prover, bound },
                Ok(Verdict::CounterModel(_)) => VerdictSummary::Refuted,
                Ok(Verdict::Unknown(diag)) => VerdictSummary::Unknown(diag),
                Err(panic) => {
                    report.error = Some(format!(
                        "dispatch panicked on `{}`: {}",
                        ob.label,
                        panic_message(&panic)
                    ));
                    VerdictSummary::Unknown(Diagnosis::default())
                }
            };
            recorder.record_with(|| Event::ObligationEnd {
                index: oi as u64,
                verdict: summary.to_string(),
                micros: start.elapsed().as_micros() as u64,
            });
            report.obligations.push(ObligationReport {
                label: ob.label.clone(),
                verdict: summary,
                millis,
            });
        }
    }
    recorder.record_with(|| Event::MethodEnd {
        index: run_index as u64,
        error: report.error.clone(),
        micros: method_started.elapsed().as_micros() as u64,
    });
    let stats = dispatcher.stats.snapshot();
    (report, stats, recorder.drain())
}

fn panic_message(panic: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = panic.downcast_ref::<&'static str>() {
        s
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s
    } else {
        "non-string panic payload"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jahob_util::obs::MemorySink;

    const COUNTER_OK: &str = r#"
class Counter {
  /*: public static specvar g :: int; */
  public static void bump(int limit)
  /*: requires "0 <= g & g <= limit" modifies g ensures "g <= limit + 1" */
  {
    //: g := "g + 1";
  }
}
"#;

    #[test]
    fn verifies_toy_counter() {
        let verifier = Config::builder().build_verifier();
        let report = verifier.verify(COUNTER_OK).unwrap();
        assert!(report.all_proved(), "{report}");
    }

    #[test]
    fn refutes_broken_contract() {
        let src = r#"
class Counter {
  /*: public static specvar g :: int; */
  public static void bump()
  /*: modifies g ensures "g = old g" */
  {
    //: g := "g + 1";
  }
}
"#;
        let report = Config::builder().build_verifier().verify(src).unwrap();
        assert!(!report.all_proved(), "{report}");
    }

    #[test]
    fn vcgen_failure_degrades_per_method() {
        // `broken` calls a method that does not exist, so its VC generation
        // fails — but `bump` must still verify: one bad method never aborts
        // the run.
        let src = r#"
class Counter {
  /*: public static specvar g :: int; */
  public static void bump(int limit)
  /*: requires "0 <= g & g <= limit" modifies g ensures "g <= limit + 1" */
  {
    //: g := "g + 1";
  }
  public static void broken()
  /*: modifies g ensures "g = 0" */
  {
    Counter.missing();
  }
}
"#;
        let report = Config::builder().build_verifier().verify(src).unwrap();
        assert!(!report.all_proved(), "{report}");
        let bump = report.method("Counter", "bump").unwrap();
        assert!(bump.all_proved(), "{report}");
        let broken = report.method("Counter", "broken").unwrap();
        assert!(broken.error.is_some(), "{report}");
    }

    #[test]
    fn request_options_default_matches_plain_verify() {
        let verifier = Config::builder().workers(1).build_verifier();
        let plain = verifier.verify(COUNTER_OK).unwrap();
        let with_default = verifier
            .verify_with(COUNTER_OK, &RequestOptions::default())
            .unwrap();
        // Same session, so the second run is warmer; verdict structure
        // must be identical either way.
        let methods =
            |r: &VerifyReport| array(r.methods.iter().map(|m| m.to_json(ReportRender::STABLE)));
        assert_eq!(methods(&plain), methods(&with_default));
    }

    #[test]
    fn request_sink_override_routes_one_request() {
        let session_sink = Arc::new(MemorySink::new());
        let verifier = Config::builder()
            .workers(1)
            .sink(session_sink.clone())
            .build_verifier();
        let request_sink = Arc::new(MemorySink::new());
        verifier
            .verify_with(
                COUNTER_OK,
                &RequestOptions {
                    sink: Some(request_sink.clone()),
                    ..RequestOptions::default()
                },
            )
            .unwrap();
        // The request's stream went to the override, not the session
        // sink; a later plain verify lands on the session sink again.
        assert!(session_sink.events().is_empty());
        assert!(matches!(
            request_sink.events().first(),
            Some(Event::RunStart { .. })
        ));
        verifier.verify(COUNTER_OK).unwrap();
        assert!(matches!(
            session_sink.events().first(),
            Some(Event::RunStart { .. })
        ));
    }

    #[test]
    fn session_cache_stays_warm_across_calls() {
        let verifier = Config::builder()
            .workers(1)
            .goal_cache(true)
            .build_verifier();
        let cold = verifier.verify(COUNTER_OK).unwrap();
        let warm = verifier.verify(COUNTER_OK).unwrap();
        assert!(warm.all_proved());
        let hits = |r: &VerifyReport| r.stats.get("cache.hit").copied().unwrap_or(0);
        let misses = |r: &VerifyReport| r.stats.get("cache.miss").copied().unwrap_or(0);
        assert!(
            hits(&warm) >= misses(&cold).max(1),
            "second run must replay the first run's proofs: cold {:?} warm {:?}",
            cold.stats,
            warm.stats
        );
        // Verdicts are identical either way.
        let strip_stats = |r: &VerifyReport| {
            r.deterministic_lines()
                .into_iter()
                .filter(|l| !l.starts_with("stat "))
                .collect::<Vec<_>>()
        };
        assert_eq!(strip_stats(&cold), strip_stats(&warm));
    }

    #[test]
    fn report_json_is_stable_and_structured() {
        let sink = Arc::new(MemorySink::new());
        let verifier = Config::builder()
            .workers(1)
            .sink(sink.clone())
            .build_verifier();
        let report = verifier.verify(COUNTER_OK).unwrap();
        let json = report.to_json(ReportRender::STABLE);
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains(r#""class":"Counter""#), "{json}");
        assert!(json.contains(r#""status":"verified""#), "{json}");
        assert!(json.contains(r#""kind":"proved""#), "{json}");
        assert!(!json.contains("millis"), "stable JSON has no wall-clock");
        assert!(!json.contains("time.micros"), "{json}");
        // The timed variant adds wall-clock without disturbing structure.
        let timed = report.to_json(ReportRender::TIMING);
        assert!(timed.contains("millis"), "{timed}");
        // A second identical run serializes to identical bytes.
        let again = verifier.verify(COUNTER_OK).unwrap();
        // (cache warmth changes counters; compare method structure only)
        let methods =
            |r: &VerifyReport| array(r.methods.iter().map(|m| m.to_json(ReportRender::STABLE)));
        assert_eq!(methods(&report), methods(&again));
        // The sink saw a well-formed run span.
        let events = sink.events();
        assert!(matches!(events.first(), Some(Event::RunStart { .. })));
        assert!(matches!(events.last(), Some(Event::RunEnd { .. })));
    }
}
