//! The end-to-end verification pipeline.

use crate::dispatcher::{Diagnosis, DispatchConfig, Dispatcher, ProverId, Verdict};
use jahob_javalite::{parse_program, resolve};
use jahob_util::{trace_enabled, Symbol};
use jahob_vcgen::method_obligations;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;

/// Pipeline configuration.
#[derive(Clone, Debug, Default)]
pub struct Config {
    pub dispatch: DispatchConfig,
}

/// Report for one obligation.
#[derive(Clone, Debug)]
pub struct ObligationReport {
    pub label: String,
    pub verdict: VerdictSummary,
    pub millis: u128,
}

/// Printable verdict. `Unknown` carries the dispatcher's failure taxonomy
/// so the report says which provers were tried and why each one stopped.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum VerdictSummary {
    Proved {
        prover: ProverId,
        bound: Option<u32>,
    },
    Refuted,
    Unknown(Diagnosis),
}

impl VerdictSummary {
    pub fn is_unknown(&self) -> bool {
        matches!(self, VerdictSummary::Unknown(_))
    }
}

impl fmt::Display for VerdictSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerdictSummary::Proved {
                prover,
                bound: None,
            } => {
                write!(f, "proved [{prover}]")
            }
            VerdictSummary::Proved {
                prover,
                bound: Some(b),
            } => write!(f, "proved [{prover}, universe ≤ {b}]"),
            VerdictSummary::Refuted => write!(f, "REFUTED (counter-model)"),
            VerdictSummary::Unknown(diag) => write!(f, "unknown ({diag})"),
        }
    }
}

/// Report for one method.
#[derive(Clone, Debug)]
pub struct MethodReport {
    pub class: Symbol,
    pub method: Symbol,
    pub obligations: Vec<ObligationReport>,
    /// Set when this method's VC generation or dispatch died (error or
    /// panic). The method is reported as failed — never silently verified —
    /// while the rest of the run proceeds.
    pub error: Option<String>,
}

impl MethodReport {
    pub fn all_proved(&self) -> bool {
        self.error.is_none()
            && self
                .obligations
                .iter()
                .all(|o| matches!(o.verdict, VerdictSummary::Proved { .. }))
    }

    pub fn any_refuted(&self) -> bool {
        self.obligations
            .iter()
            .any(|o| o.verdict == VerdictSummary::Refuted)
    }
}

/// Whole-program report.
#[derive(Clone, Debug)]
pub struct VerifyReport {
    pub methods: Vec<MethodReport>,
}

impl VerifyReport {
    pub fn all_proved(&self) -> bool {
        self.methods.iter().all(MethodReport::all_proved)
    }

    pub fn method(&self, class: &str, method: &str) -> Option<&MethodReport> {
        self.methods
            .iter()
            .find(|m| m.class.as_str() == class && m.method.as_str() == method)
    }

    /// Count of (proved, refuted, unknown) obligations.
    pub fn tally(&self) -> (usize, usize, usize) {
        let mut proved = 0;
        let mut refuted = 0;
        let mut unknown = 0;
        for m in &self.methods {
            for o in &m.obligations {
                match &o.verdict {
                    VerdictSummary::Proved { .. } => proved += 1,
                    VerdictSummary::Refuted => refuted += 1,
                    VerdictSummary::Unknown(_) => unknown += 1,
                }
            }
        }
        (proved, refuted, unknown)
    }
}

impl fmt::Display for VerifyReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for m in &self.methods {
            let status = if m.all_proved() {
                "VERIFIED"
            } else if m.any_refuted() {
                "REFUTED"
            } else {
                "INCOMPLETE"
            };
            writeln!(f, "{}.{}: {status}", m.class, m.method)?;
            if let Some(err) = &m.error {
                writeln!(f, "    (pipeline failure: {err})")?;
            }
            for o in &m.obligations {
                writeln!(f, "    {:<55} {} ({} ms)", o.label, o.verdict, o.millis)?;
            }
            if m.obligations.is_empty() && m.error.is_none() {
                writeln!(f, "    (all obligations discharged during generation)")?;
            }
        }
        let (p, r, u) = self.tally();
        writeln!(f, "total: {p} proved, {r} refuted, {u} unknown")
    }
}

/// Pipeline errors.
#[derive(Debug)]
pub enum VerifyError {
    Frontend(jahob_javalite::FrontendError),
    Vcgen(jahob_vcgen::VcgenError),
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::Frontend(e) => write!(f, "{e}"),
            VerifyError::Vcgen(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for VerifyError {}

/// Verify a `.javax` source: parse, resolve, generate obligations,
/// dispatch each to the portfolio.
pub fn verify_source(src: &str, config: &Config) -> Result<VerifyReport, VerifyError> {
    let trace = trace_enabled();
    if trace {
        eprintln!("[pipeline] parsing...");
    }
    let program = parse_program(src).map_err(VerifyError::Frontend)?;
    if trace {
        eprintln!("[pipeline] resolving...");
    }
    let typed = resolve(&program).map_err(VerifyError::Frontend)?;
    if trace {
        eprintln!("[pipeline] generating obligations and dispatching...");
    }

    // The VC generator already unfolded each class's own abstraction
    // functions; clients reason abstractly, so the dispatcher gets no
    // definitions (unfolding foreign private vardefs would both break
    // modularity and blow up client obligations).
    let mut dispatcher = Dispatcher::new(typed.sig.clone(), jahob_util::FxHashMap::default());
    dispatcher.config = config.dispatch.clone();

    // Per-method graceful degradation: a method whose VC generation or
    // dispatch dies (error *or* panic) becomes a diagnosed failure in the
    // report while every other method still verifies. One bad method — or
    // one bug in a reasoning substrate that escapes the dispatcher's
    // per-attempt isolation — must not abort the whole run.
    let mut methods = Vec::new();
    for class in &typed.classes {
        for m in &class.methods {
            if m.contract.assumed {
                continue;
            }
            let mut report = MethodReport {
                class: m.class,
                method: m.name,
                obligations: Vec::new(),
                error: None,
            };
            let vcs = catch_unwind(AssertUnwindSafe(|| method_obligations(&typed, m)));
            let mv = match vcs {
                Ok(Ok(mv)) => Some(mv),
                Ok(Err(e)) => {
                    report.error = Some(format!("VC generation failed: {e}"));
                    None
                }
                Err(panic) => {
                    report.error =
                        Some(format!("VC generation panicked: {}", panic_message(&panic)));
                    None
                }
            };
            if let Some(mv) = mv {
                for ob in &mv.obligations {
                    if trace_enabled() {
                        eprintln!(
                            "[jahob] {}.{} :: {} (size {})",
                            mv.class,
                            mv.method,
                            ob.label,
                            ob.form.size()
                        );
                    }
                    let start = Instant::now();
                    let verdict = catch_unwind(AssertUnwindSafe(|| dispatcher.prove(&ob.form)));
                    let millis = start.elapsed().as_millis();
                    let summary = match verdict {
                        Ok(Verdict::Proved { prover, bound }) => {
                            VerdictSummary::Proved { prover, bound }
                        }
                        Ok(Verdict::CounterModel(_)) => VerdictSummary::Refuted,
                        Ok(Verdict::Unknown(diag)) => VerdictSummary::Unknown(diag),
                        Err(panic) => {
                            report.error = Some(format!(
                                "dispatch panicked on `{}`: {}",
                                ob.label,
                                panic_message(&panic)
                            ));
                            VerdictSummary::Unknown(Diagnosis::default())
                        }
                    };
                    report.obligations.push(ObligationReport {
                        label: ob.label.clone(),
                        verdict: summary,
                        millis,
                    });
                }
            }
            methods.push(report);
        }
    }
    Ok(VerifyReport { methods })
}

fn panic_message(panic: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = panic.downcast_ref::<&'static str>() {
        s
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s
    } else {
        "non-string panic payload"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verifies_toy_counter() {
        let src = r#"
class Counter {
  /*: public static specvar g :: int; */
  public static void bump(int limit)
  /*: requires "0 <= g & g <= limit" modifies g ensures "g <= limit + 1" */
  {
    //: g := "g + 1";
  }
}
"#;
        let report = verify_source(src, &Config::default()).unwrap();
        assert!(report.all_proved(), "{report}");
    }

    #[test]
    fn refutes_broken_contract() {
        let src = r#"
class Counter {
  /*: public static specvar g :: int; */
  public static void bump()
  /*: modifies g ensures "g = old g" */
  {
    //: g := "g + 1";
  }
}
"#;
        let report = verify_source(src, &Config::default()).unwrap();
        assert!(!report.all_proved(), "{report}");
    }

    #[test]
    fn vcgen_failure_degrades_per_method() {
        // `broken` calls a method that does not exist, so its VC generation
        // fails — but `bump` must still verify: one bad method never aborts
        // the run.
        let src = r#"
class Counter {
  /*: public static specvar g :: int; */
  public static void bump(int limit)
  /*: requires "0 <= g & g <= limit" modifies g ensures "g <= limit + 1" */
  {
    //: g := "g + 1";
  }
  public static void broken()
  /*: modifies g ensures "g = 0" */
  {
    Counter.missing();
  }
}
"#;
        let report = verify_source(src, &Config::default()).unwrap();
        assert!(!report.all_proved(), "{report}");
        let bump = report.method("Counter", "bump").unwrap();
        assert!(bump.all_proved(), "{report}");
        let broken = report.method("Counter", "broken").unwrap();
        assert!(broken.error.is_some(), "{report}");
    }
}
