//! The end-to-end verification pipeline.
//!
//! Methods are independent verification units (§3 of the paper), so the
//! pipeline fans them out across a work-stealing pool and shares one
//! normalized-goal cache across the run. The parallel report is
//! bit-for-bit identical to the sequential one: obligations keep their
//! stable per-method indices, results come back in submission order, and
//! everything schedule-dependent (fresh-symbol suffixes, chaos decisions)
//! is keyed on obligation *content* rather than arrival order.

use crate::dispatcher::{Diagnosis, DispatchConfig, Dispatcher, ProverId, Verdict};
use crate::goal_cache::GoalCache;
use jahob_javalite::{parse_program, resolve, TypedProgram};
use jahob_util::{pool, trace_enabled, Symbol};
use jahob_vcgen::method_obligations;
use std::collections::BTreeMap;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::Instant;

/// Pipeline configuration.
#[derive(Clone, Debug)]
pub struct Config {
    pub dispatch: DispatchConfig,
    /// Worker threads for fanning methods out. `0` (the default) consults
    /// the `JAHOB_WORKERS` environment variable, falling back to `1`
    /// (sequential). Any positive value is used as given.
    pub workers: usize,
    /// Share a run-wide normalized-goal cache across methods, so
    /// alpha-equivalent obligations are dispatched once per run.
    pub goal_cache: bool,
    /// Reuse a cache across *runs* (warm re-verification): pass the same
    /// `Arc` to successive `verify_source` calls and unchanged obligations
    /// replay their proofs instead of re-dispatching. `None` (the default)
    /// gives each run a private cache. Only consulted when `goal_cache`
    /// is on; poisoned entries are still guarded by the cross-check
    /// watchdog exactly as within a run.
    pub shared_cache: Option<Arc<GoalCache>>,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            dispatch: DispatchConfig::default(),
            workers: 0,
            goal_cache: true,
            shared_cache: None,
        }
    }
}

impl Config {
    /// Resolve the worker count: an explicit `workers` wins, then
    /// `JAHOB_WORKERS`, then sequential.
    pub fn effective_workers(&self) -> usize {
        if self.workers > 0 {
            return self.workers;
        }
        std::env::var("JAHOB_WORKERS")
            .ok()
            .and_then(|raw| raw.trim().parse::<usize>().ok())
            .filter(|&w| w > 0)
            .unwrap_or(1)
    }
}

/// Report for one obligation.
#[derive(Clone, Debug)]
pub struct ObligationReport {
    pub label: String,
    pub verdict: VerdictSummary,
    pub millis: u128,
}

/// Printable verdict. `Unknown` carries the dispatcher's failure taxonomy
/// so the report says which provers were tried and why each one stopped.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum VerdictSummary {
    Proved {
        prover: ProverId,
        bound: Option<u32>,
    },
    Refuted,
    Unknown(Diagnosis),
}

impl VerdictSummary {
    pub fn is_unknown(&self) -> bool {
        matches!(self, VerdictSummary::Unknown(_))
    }
}

impl fmt::Display for VerdictSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerdictSummary::Proved {
                prover,
                bound: None,
            } => {
                write!(f, "proved [{prover}]")
            }
            VerdictSummary::Proved {
                prover,
                bound: Some(b),
            } => write!(f, "proved [{prover}, universe ≤ {b}]"),
            VerdictSummary::Refuted => write!(f, "REFUTED (counter-model)"),
            VerdictSummary::Unknown(diag) => write!(f, "unknown ({diag})"),
        }
    }
}

/// Report for one method.
#[derive(Clone, Debug)]
pub struct MethodReport {
    pub class: Symbol,
    pub method: Symbol,
    pub obligations: Vec<ObligationReport>,
    /// Set when this method's VC generation or dispatch died (error or
    /// panic). The method is reported as failed — never silently verified —
    /// while the rest of the run proceeds.
    pub error: Option<String>,
}

impl MethodReport {
    pub fn all_proved(&self) -> bool {
        self.error.is_none()
            && self
                .obligations
                .iter()
                .all(|o| matches!(o.verdict, VerdictSummary::Proved { .. }))
    }

    pub fn any_refuted(&self) -> bool {
        self.obligations
            .iter()
            .any(|o| o.verdict == VerdictSummary::Refuted)
    }
}

/// Whole-program report.
#[derive(Clone, Debug)]
pub struct VerifyReport {
    pub methods: Vec<MethodReport>,
    /// Run-wide dispatcher counters, summed over every method's
    /// dispatcher (cache hits/misses, per-prover outcomes, chaos
    /// injections, breaker transitions, …).
    pub stats: BTreeMap<String, u64>,
}

impl VerifyReport {
    pub fn all_proved(&self) -> bool {
        self.methods.iter().all(MethodReport::all_proved)
    }

    /// Schedule-independent view of the report, for asserting that two
    /// runs (sequential vs. parallel, different worker counts) agree:
    /// methods, obligations, verdicts, diagnoses, pipeline errors, and
    /// every order-free counter. Wall-clock is excluded — per-obligation
    /// `millis` and any stat whose name mentions `time`, `micros`, or
    /// `millis` legitimately vary between runs.
    pub fn deterministic_lines(&self) -> Vec<String> {
        let mut lines = Vec::new();
        for m in &self.methods {
            lines.push(format!("{}.{} error={:?}", m.class, m.method, m.error));
            for o in &m.obligations {
                lines.push(format!("  {} :: {}", o.label, o.verdict));
            }
        }
        for (name, value) in &self.stats {
            if name.contains("time") || name.contains("micros") || name.contains("millis") {
                continue;
            }
            lines.push(format!("stat {name} = {value}"));
        }
        lines
    }

    pub fn method(&self, class: &str, method: &str) -> Option<&MethodReport> {
        self.methods
            .iter()
            .find(|m| m.class.as_str() == class && m.method.as_str() == method)
    }

    /// Count of (proved, refuted, unknown) obligations.
    pub fn tally(&self) -> (usize, usize, usize) {
        let mut proved = 0;
        let mut refuted = 0;
        let mut unknown = 0;
        for m in &self.methods {
            for o in &m.obligations {
                match &o.verdict {
                    VerdictSummary::Proved { .. } => proved += 1,
                    VerdictSummary::Refuted => refuted += 1,
                    VerdictSummary::Unknown(_) => unknown += 1,
                }
            }
        }
        (proved, refuted, unknown)
    }
}

impl fmt::Display for VerifyReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for m in &self.methods {
            let status = if m.all_proved() {
                "VERIFIED"
            } else if m.any_refuted() {
                "REFUTED"
            } else {
                "INCOMPLETE"
            };
            writeln!(f, "{}.{}: {status}", m.class, m.method)?;
            if let Some(err) = &m.error {
                writeln!(f, "    (pipeline failure: {err})")?;
            }
            for o in &m.obligations {
                writeln!(f, "    {:<55} {} ({} ms)", o.label, o.verdict, o.millis)?;
            }
            if m.obligations.is_empty() && m.error.is_none() {
                writeln!(f, "    (all obligations discharged during generation)")?;
            }
        }
        let (p, r, u) = self.tally();
        writeln!(f, "total: {p} proved, {r} refuted, {u} unknown")
    }
}

/// Pipeline errors.
#[derive(Debug)]
pub enum VerifyError {
    Frontend(jahob_javalite::FrontendError),
    Vcgen(jahob_vcgen::VcgenError),
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::Frontend(e) => write!(f, "{e}"),
            VerifyError::Vcgen(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for VerifyError {}

/// Verify a `.javax` source: parse, resolve, generate obligations,
/// dispatch each to the portfolio — fanning methods out across the worker
/// pool when [`Config::effective_workers`] exceeds one.
pub fn verify_source(src: &str, config: &Config) -> Result<VerifyReport, VerifyError> {
    let trace = trace_enabled();
    if trace {
        eprintln!("[pipeline] parsing...");
    }
    let program = parse_program(src).map_err(VerifyError::Frontend)?;
    if trace {
        eprintln!("[pipeline] resolving...");
    }
    let typed = resolve(&program).map_err(VerifyError::Frontend)?;
    if trace {
        eprintln!("[pipeline] generating obligations and dispatching...");
    }

    let cache = config.goal_cache.then(|| {
        config
            .shared_cache
            .clone()
            .unwrap_or_else(|| Arc::new(GoalCache::new()))
    });
    // Stable job list: (class index, method index) in source order. The
    // pool returns results in submission order, so the report layout is
    // identical no matter which worker ran what.
    let jobs: Vec<(usize, usize)> = typed
        .classes
        .iter()
        .enumerate()
        .flat_map(|(ci, class)| {
            class
                .methods
                .iter()
                .enumerate()
                .filter(|(_, m)| !m.contract.assumed)
                .map(move |(mi, _)| (ci, mi))
        })
        .collect();
    let workers = config.effective_workers().min(jobs.len().max(1));

    let results: Vec<(MethodReport, Vec<(String, u64)>)> = if workers <= 1 {
        jobs.iter()
            .map(|&(ci, mi)| verify_method(&typed, ci, mi, config, cache.as_ref()))
            .collect()
    } else {
        // Formula ASTs are `Rc`-based and must not cross threads, so each
        // worker re-parses and re-resolves its own copy of the program
        // (symbols intern globally, so `Symbol`s agree across workers) and
        // only `Send` report data comes back. Verdicts cannot depend on
        // which worker ran a method: the dispatcher canonicalizes every
        // goal before proving, so fresh-counter drift between workers
        // never reaches a prover.
        pool::run_with_local(
            workers,
            None,
            jobs.clone(),
            |_worker| {
                let program = parse_program(src).expect("parsed on the caller thread");
                resolve(&program).expect("resolved on the caller thread")
            },
            |typed, _cx, (ci, mi)| verify_method(typed, ci, mi, config, cache.as_ref()),
        )
        .into_iter()
        .enumerate()
        .map(|(i, outcome)| {
            outcome.unwrap_or_else(|task_panic| {
                // The pool isolates a panicking method; degrade it to a
                // diagnosed failure just like the sequential path does.
                let (ci, mi) = jobs[i];
                let m = &typed.classes[ci].methods[mi];
                (
                    MethodReport {
                        class: m.class,
                        method: m.name,
                        obligations: Vec::new(),
                        error: Some(format!("worker panicked: {}", task_panic.message)),
                    },
                    Vec::new(),
                )
            })
        })
        .collect()
    };

    let mut methods = Vec::new();
    let mut stats = BTreeMap::new();
    for (report, method_stats) in results {
        methods.push(report);
        for (name, value) in method_stats {
            *stats.entry(name).or_insert(0) += value;
        }
    }
    Ok(VerifyReport { methods, stats })
}

/// Verify one method with its own dispatcher (fresh circuit-breaker bank,
/// so breaker state never couples methods across scheduling orders),
/// sharing the run-wide goal cache. Returns the method report plus the
/// dispatcher's counter snapshot for run-level aggregation.
///
/// Per-method graceful degradation: a method whose VC generation or
/// dispatch dies (error *or* panic) becomes a diagnosed failure in the
/// report while every other method still verifies. One bad method — or
/// one bug in a reasoning substrate that escapes the dispatcher's
/// per-attempt isolation — must not abort the whole run.
fn verify_method(
    typed: &TypedProgram,
    class_index: usize,
    method_index: usize,
    config: &Config,
    cache: Option<&Arc<GoalCache>>,
) -> (MethodReport, Vec<(String, u64)>) {
    let m = &typed.classes[class_index].methods[method_index];
    // The VC generator already unfolded each class's own abstraction
    // functions; clients reason abstractly, so the dispatcher gets no
    // definitions (unfolding foreign private vardefs would both break
    // modularity and blow up client obligations).
    let mut dispatcher = Dispatcher::new(typed.sig.clone(), jahob_util::FxHashMap::default());
    dispatcher.config = config.dispatch.clone();
    dispatcher.cache = cache.map(Arc::clone);

    let mut report = MethodReport {
        class: m.class,
        method: m.name,
        obligations: Vec::new(),
        error: None,
    };
    let vcs = catch_unwind(AssertUnwindSafe(|| method_obligations(typed, m)));
    let mv = match vcs {
        Ok(Ok(mv)) => Some(mv),
        Ok(Err(e)) => {
            report.error = Some(format!("VC generation failed: {e}"));
            None
        }
        Err(panic) => {
            report.error = Some(format!("VC generation panicked: {}", panic_message(&panic)));
            None
        }
    };
    if let Some(mv) = mv {
        for ob in &mv.obligations {
            if trace_enabled() {
                eprintln!(
                    "[jahob] {}.{} :: {} (size {})",
                    mv.class,
                    mv.method,
                    ob.label,
                    ob.form.size()
                );
            }
            let start = Instant::now();
            let verdict = catch_unwind(AssertUnwindSafe(|| dispatcher.prove(&ob.form)));
            let millis = start.elapsed().as_millis();
            let summary = match verdict {
                Ok(Verdict::Proved { prover, bound }) => VerdictSummary::Proved { prover, bound },
                Ok(Verdict::CounterModel(_)) => VerdictSummary::Refuted,
                Ok(Verdict::Unknown(diag)) => VerdictSummary::Unknown(diag),
                Err(panic) => {
                    report.error = Some(format!(
                        "dispatch panicked on `{}`: {}",
                        ob.label,
                        panic_message(&panic)
                    ));
                    VerdictSummary::Unknown(Diagnosis::default())
                }
            };
            report.obligations.push(ObligationReport {
                label: ob.label.clone(),
                verdict: summary,
                millis,
            });
        }
    }
    (report, dispatcher.stats.snapshot())
}

fn panic_message(panic: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = panic.downcast_ref::<&'static str>() {
        s
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s
    } else {
        "non-string panic payload"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verifies_toy_counter() {
        let src = r#"
class Counter {
  /*: public static specvar g :: int; */
  public static void bump(int limit)
  /*: requires "0 <= g & g <= limit" modifies g ensures "g <= limit + 1" */
  {
    //: g := "g + 1";
  }
}
"#;
        let report = verify_source(src, &Config::default()).unwrap();
        assert!(report.all_proved(), "{report}");
    }

    #[test]
    fn refutes_broken_contract() {
        let src = r#"
class Counter {
  /*: public static specvar g :: int; */
  public static void bump()
  /*: modifies g ensures "g = old g" */
  {
    //: g := "g + 1";
  }
}
"#;
        let report = verify_source(src, &Config::default()).unwrap();
        assert!(!report.all_proved(), "{report}");
    }

    #[test]
    fn vcgen_failure_degrades_per_method() {
        // `broken` calls a method that does not exist, so its VC generation
        // fails — but `bump` must still verify: one bad method never aborts
        // the run.
        let src = r#"
class Counter {
  /*: public static specvar g :: int; */
  public static void bump(int limit)
  /*: requires "0 <= g & g <= limit" modifies g ensures "g <= limit + 1" */
  {
    //: g := "g + 1";
  }
  public static void broken()
  /*: modifies g ensures "g = 0" */
  {
    Counter.missing();
  }
}
"#;
        let report = verify_source(src, &Config::default()).unwrap();
        assert!(!report.all_proved(), "{report}");
        let bump = report.method("Counter", "bump").unwrap();
        assert!(bump.all_proved(), "{report}");
        let broken = report.method("Counter", "broken").unwrap();
        assert!(broken.error.is_some(), "{report}");
    }
}
