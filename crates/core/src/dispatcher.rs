//! The prover portfolio and goal decomposition.
//!
//! Each proof obligation is simplified, split into conjuncts (pushing the
//! split under hypotheses and universal quantifiers — §3's "simple goal
//! decomposition technique"), and every piece is offered to the portfolio
//! in order of increasing generality and cost. Abstraction-function symbols
//! (`vardefs`) are unfolded on demand when the abstract attempt fails.

use jahob_logic::transform::{simplify, split_conjuncts, unfold_defs};
use jahob_logic::{Form, Sort, SortCx};
use jahob_smt::lift_ite;
use jahob_models::BmcVerdict;
use jahob_util::counters::Stats;
use jahob_util::{FxHashMap, Symbol};
use std::fmt;
use std::time::Instant;

/// Which component proved (or refuted) an obligation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ProverId {
    /// Equivalence-preserving simplification reduced the goal to `True`.
    Simplifier,
    /// The HOL `auto` tactic (structural reasoning).
    Hol,
    /// Presburger arithmetic (Cooper / Omega).
    Lia,
    /// Boolean Algebra with Presburger Arithmetic.
    Bapa,
    /// Nelson–Oppen EUF+LIA.
    Smt,
    /// First-order resolution with reachability axioms.
    Fol,
    /// Bounded model finder (validity up to the recorded bound).
    Bmc,
}

impl fmt::Display for ProverId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            ProverId::Simplifier => "simplifier",
            ProverId::Hol => "hol-auto",
            ProverId::Lia => "presburger",
            ProverId::Bapa => "bapa",
            ProverId::Smt => "nelson-oppen",
            ProverId::Fol => "fol-resolution",
            ProverId::Bmc => "bounded-models",
        };
        f.write_str(name)
    }
}

/// Outcome for one obligation.
#[derive(Clone, Debug)]
pub enum Verdict {
    /// Proved; which prover and (for BMC) up to which bound.
    Proved {
        prover: ProverId,
        bound: Option<u32>,
    },
    /// Refuted with a genuine counter-model (checked by the reference
    /// evaluator).
    CounterModel(Box<jahob_logic::Model>),
    /// No component could decide it.
    Unknown,
}

impl Verdict {
    pub fn is_proved(&self) -> bool {
        matches!(self, Verdict::Proved { .. })
    }
}

/// Portfolio configuration (the ablation knobs of E6/E11).
#[derive(Clone, Debug)]
pub struct DispatchConfig {
    /// Split goals into conjuncts before dispatch.
    pub decompose: bool,
    /// Unfold `vardefs` when the abstract goal fails.
    pub unfold: bool,
    /// Counter-model search bound (0 disables BMC entirely).
    pub bmc_bound: u32,
    /// Accept BMC exhaustion as (bounded) validity. When false the model
    /// finder is used for counterexamples only.
    pub bmc_as_validity: bool,
    /// Resolution-prover effort.
    pub fol_iterations: usize,
}

impl Default for DispatchConfig {
    fn default() -> Self {
        DispatchConfig {
            decompose: true,
            unfold: true,
            bmc_bound: 3,
            bmc_as_validity: true,
            fol_iterations: 700,
        }
    }
}

/// The dispatcher: signature + definitions + portfolio.
pub struct Dispatcher {
    pub sig: FxHashMap<Symbol, Sort>,
    /// `vardefs`: abstraction-function definitions.
    pub defs: FxHashMap<Symbol, Form>,
    pub config: DispatchConfig,
    pub stats: Stats,
}

impl Dispatcher {
    pub fn new(sig: FxHashMap<Symbol, Sort>, defs: FxHashMap<Symbol, Form>) -> Self {
        Dispatcher {
            sig,
            defs,
            config: DispatchConfig::default(),
            stats: Stats::new(),
        }
    }

    /// Elaborate a goal against the signature (resolving `<=`/`-`/`=`
    /// overloads) and return the *goal-specific* signature: verification
    /// conditions contain fresh havoc/snapshot symbols whose sorts only
    /// inference can recover. Falls back to the raw goal and the base
    /// signature when inference fails.
    fn elaborate(&self, goal: &Form) -> (Form, FxHashMap<Symbol, Sort>) {
        let mut cx = SortCx::new();
        for (name, sort) in &self.sig {
            cx.declare(*name, sort.clone());
        }
        match cx.check_bool(goal) {
            Ok(elaborated) => (elaborated, cx.resolved_sig()),
            Err(_) => (goal.clone(), self.sig.clone()),
        }
    }

    /// Prove one obligation.
    pub fn prove(&self, goal: &Form) -> Verdict {
        let (elaborated, _) = self.elaborate(&lift_ite(goal));
        let simplified = simplify(&elaborated);
        if simplified == Form::tt() {
            self.stats.bump("proved.simplifier");
            return Verdict::Proved {
                prover: ProverId::Simplifier,
                bound: None,
            };
        }
        let pieces = if self.config.decompose {
            split_conjuncts(&simplified)
        } else {
            vec![simplified.clone()]
        };
        self.stats.add("goal.pieces", pieces.len() as u64);
        let mut worst_bound: Option<u32> = None;
        let mut weakest: Option<ProverId> = None;
        for piece in pieces {
            match self.prove_piece(&piece) {
                Verdict::Proved { prover, bound } => {
                    if bound.is_some() {
                        worst_bound = worst_bound.max(bound);
                    }
                    weakest = Some(match (weakest, prover) {
                        (None, p) => p,
                        (Some(ProverId::Bmc), _) | (_, ProverId::Bmc) => ProverId::Bmc,
                        (Some(w), _) => w,
                    });
                }
                other => return other,
            }
        }
        Verdict::Proved {
            prover: weakest.unwrap_or(ProverId::Simplifier),
            bound: worst_bound,
        }
    }

    fn prove_piece(&self, piece: &Form) -> Verdict {
        let start = Instant::now();
        if std::env::var("JAHOB_TRACE").is_ok() {
            eprintln!("[dispatch] piece size {}", piece.size());
        }
        let verdict = self.prove_piece_inner(piece);
        self.stats
            .add("time.micros", start.elapsed().as_micros() as u64);
        verdict
    }

    fn prove_piece_inner(&self, piece: &Form) -> Verdict {
        if simplify(piece) == Form::tt() {
            self.stats.bump("proved.simplifier");
            return Verdict::Proved {
                prover: ProverId::Simplifier,
                bound: None,
            };
        }
        // Candidate goals (each with its inferred signature): the abstract
        // piece, then the vardef-unfolded variant (ites lifted and
        // re-elaborated since unfolding exposes new structure).
        let (_, piece_sig) = self.elaborate(piece);
        let mut variants = vec![(piece.clone(), piece_sig)];
        if self.config.unfold && !self.defs.is_empty() {
            let raw = lift_ite(&unfold_defs(piece, &self.defs));
            let (elaborated, sig) = self.elaborate(&raw);
            let unfolded = simplify(&elaborated);
            if unfolded != *piece {
                if unfolded == Form::tt() {
                    self.stats.bump("proved.simplifier");
                    return Verdict::Proved {
                        prover: ProverId::Simplifier,
                        bound: None,
                    };
                }
                variants.push((unfolded, sig));
            }
        }

        // Hypothesis filtering: an implication chain whose conclusion fits a
        // prover's fragment should not be lost because a *hypothesis* (e.g.
        // a quantified background axiom) does not — dropping hypotheses is
        // sound. Build per-prover filtered variants lazily.
        fn split_chain(goal: &Form) -> (Vec<Form>, Form) {
            let mut hyps = Vec::new();
            let mut current = goal.clone();
            loop {
                match current {
                    Form::Binop(jahob_logic::BinOp::Implies, h, c) => {
                        hyps.push(h.as_ref().clone());
                        current = c.as_ref().clone();
                    }
                    other => return (hyps, other),
                }
            }
        }
        fn filtered(goal: &Form, keep: &mut dyn FnMut(&Form) -> bool) -> Option<Form> {
            let (hyps, concl) = split_chain(goal);
            if hyps.is_empty() {
                return None;
            }
            // Filter at conjunct granularity: one foreign conjunct must not
            // take the rest of its conjunction down with it.
            let mut conjuncts: Vec<Form> = Vec::new();
            for h in &hyps {
                match h {
                    Form::And(parts) => conjuncts.extend(parts.iter().cloned()),
                    other => conjuncts.push(other.clone()),
                }
            }
            let total = conjuncts.len();
            let kept: Vec<Form> =
                conjuncts.into_iter().filter(|h| keep(h)).collect();
            if kept.len() == total {
                return None; // nothing dropped; the full goal was already tried
            }
            Some(kept.into_iter().rev().fold(concl, |acc, h| {
                Form::implies(h, acc)
            }))
        }

        if std::env::var("JAHOB_TRACE").is_ok() {
            eprintln!("[dispatch]   variants ready: {}", variants.len());
        }
        // Cheap, fragment-specific provers first. The structural tactic is
        // for small goals; its case-splitting is exponential in disjunctive
        // hypotheses, so gate by size.
        for (goal, _) in &variants {
            if goal.size() > 180 {
                continue;
            }
            if std::env::var("JAHOB_TRACE").is_ok() {
                eprintln!("[dispatch]   -> hol (size {})", goal.size());
            }
            if jahob_hol::auto_proves(goal) {
                self.stats.bump("proved.hol");
                return Verdict::Proved {
                    prover: ProverId::Hol,
                    bound: None,
                };
            }
        }
        for (goal, _) in &variants {
            self.stats.bump("tried.presburger");
            if std::env::var("JAHOB_TRACE").is_ok() { eprintln!("[dispatch]   -> presburger"); }
            let mut candidates = vec![goal.clone()];
            if let Some(f) = filtered(goal, &mut |h| {
                jahob_presburger::translate::form_to_pform(h).is_ok()
            }) {
                candidates.push(f);
            }
            for g in &candidates {
                if let Ok(true) = jahob_presburger::translate::decide_valid(g) {
                    self.stats.bump("proved.presburger");
                    return Verdict::Proved {
                        prover: ProverId::Lia,
                        bound: None,
                    };
                }
            }
        }
        for (goal, sig) in &variants {
            self.stats.bump("tried.bapa");
            if std::env::var("JAHOB_TRACE").is_ok() { eprintln!("[dispatch]   -> bapa"); }
            let mut candidates = vec![goal.clone()];
            if let Some(f) = filtered(goal, &mut |h| {
                jahob_bapa::base_set_count(h, sig).is_ok()
            }) {
                candidates.push(f);
            }
            for g in &candidates {
                if let Ok(true) = jahob_bapa::bapa_valid(g, sig) {
                    self.stats.bump("proved.bapa");
                    return Verdict::Proved {
                        prover: ProverId::Bapa,
                        bound: None,
                    };
                }
            }
        }
        for (goal, sig) in &variants {
            // The Nelson–Oppen core is for compact ground goals; on big VC
            // chains the lazy loop + arrangement enumeration dominates.
            if goal.size() > 150 {
                continue;
            }
            self.stats.bump("tried.smt");
            if std::env::var("JAHOB_TRACE").is_ok() { eprintln!("[dispatch]   -> smt"); }
            let mut candidates = vec![goal.clone()];
            if let Some(f) = filtered(goal, &mut |h| jahob_smt::in_fragment(h, sig)) {
                candidates.push(f);
            }
            for g in &candidates {
                let prepared = jahob_smt::lift_ite(g);
                if let Ok(true) = jahob_smt::smt_valid(&prepared, sig) {
                    self.stats.bump("proved.smt");
                    return Verdict::Proved {
                        prover: ProverId::Smt,
                        bound: None,
                    };
                }
            }
        }
        // Counter-model search before the expensive provers: a refutation
        // settles the obligation for good.
        if self.config.bmc_bound > 0 {
            for (goal, sig) in variants.iter().rev() {
                self.stats.bump("tried.bmc-refute");
            if std::env::var("JAHOB_TRACE").is_ok() { eprintln!("[dispatch]   -> bmc-refute"); }
                for universe in 1..=self.config.bmc_bound {
                    if let Ok(Some(model)) = jahob_models::refute(goal, sig, universe)
                    {
                        self.stats.bump("refuted.bmc");
                        return Verdict::CounterModel(Box::new(model));
                    }
                }
            }
        }
        for (goal, sig) in &variants {
            self.stats.bump("tried.fol");
            if std::env::var("JAHOB_TRACE").is_ok() { eprintln!("[dispatch]   -> fol"); }
            let mut config = jahob_fol::ProverConfig::default();
            config.max_iterations = self.config.fol_iterations;
            let (prepared, axioms) = jahob_fol::reach::prepare(goal, sig);
            let negated = Form::not(prepared);
            let proved = (|| -> Result<bool, jahob_fol::clause::ClausifyError> {
                let mut clauses = jahob_fol::clausify(&negated)?;
                for ax in &axioms {
                    clauses.extend(jahob_fol::clausify(ax)?);
                }
                Ok(jahob_fol::prove(clauses, &config) == jahob_fol::ProveResult::Proved)
            })();
            if let Ok(true) = proved {
                self.stats.bump("proved.fol");
                return Verdict::Proved {
                    prover: ProverId::Fol,
                    bound: None,
                };
            }
        }
        if self.config.bmc_bound > 0 && self.config.bmc_as_validity {
            for (goal, sig) in variants.iter().rev() {
                self.stats.bump("tried.bmc-validity");
                if std::env::var("JAHOB_TRACE").is_ok() {
                    eprintln!("[dispatch]   -> bmc-validity");
                }
                // Opaque set-valued applications (`List.content a`) are
                // abstracted into fresh set variables so client-level goals
                // ground; the abstraction is sound for validity, and any
                // counter-model of a weakened goal (abstracted or with
                // hypotheses filtered) is NOT reported as a refutation.
                let (abstracted, abs_sig, was_abstracted) =
                    abstract_set_apps(goal, sig);
                let trace_on = std::env::var("JAHOB_TRACE").is_ok();
                let filtered_candidate = filtered(&abstracted, &mut |h| {
                    let ok = jahob_models::in_fragment(h, &abs_sig, 1);
                    if !ok && trace_on {
                        let t = h.to_string();
                        eprintln!(
                            "[dispatch]      bmc drops hyp: {}",
                            t.chars().take(120).collect::<String>()
                        );
                    }
                    ok
                });
                let weakened = was_abstracted || filtered_candidate.is_some();
                let candidate =
                    filtered_candidate.unwrap_or_else(|| abstracted.clone());
                let bmc_result = jahob_models::bmc_valid_with_bound(
                    &candidate,
                    &abs_sig,
                    self.config.bmc_bound,
                );
                if std::env::var("JAHOB_TRACE").is_ok() {
                    match &bmc_result {
                        Ok(BmcVerdict::ValidUpTo(b)) => {
                            eprintln!("[dispatch]      bmc: valid up to {b}")
                        }
                        Ok(BmcVerdict::CounterModel(_)) => eprintln!(
                            "[dispatch]      bmc: counter-model (weakened={weakened})"
                        ),
                        Err(e) => eprintln!("[dispatch]      bmc: err {e}"),
                    }
                }
                match bmc_result {
                    Ok(BmcVerdict::ValidUpTo(bound)) => {
                        self.stats.bump("proved.bmc");
                        return Verdict::Proved {
                            prover: ProverId::Bmc,
                            bound: Some(bound),
                        };
                    }
                    Ok(BmcVerdict::CounterModel(model)) => {
                        if !weakened {
                            self.stats.bump("refuted.bmc");
                            return Verdict::CounterModel(model);
                        }
                        // Counter-model of a weakened goal: inconclusive.
                    }
                    Err(_) => {}
                }
            }
        }
        self.stats.bump("unknown");
        Verdict::Unknown
    }
}

/// Replace every set-valued application (head symbol of sort
/// `_ => objset`) by a fresh set variable, consistently per distinct term,
/// and add the congruence facts the replacement would otherwise lose:
/// for same-head applications `f t₁ → S₁`, `f t₂ → S₂`, the (valid)
/// hypothesis `t₁ = t₂ → S₁ = S₂`. Sound for validity: the abstraction
/// forgets constraints and the added hypotheses are true in every model.
fn abstract_set_apps(
    goal: &Form,
    sig: &FxHashMap<Symbol, Sort>,
) -> (Form, FxHashMap<Symbol, Sort>, bool) {
    use std::rc::Rc;
    struct Cx<'a> {
        sig: &'a FxHashMap<Symbol, Sort>,
        out_sig: FxHashMap<Symbol, Sort>,
        map: FxHashMap<Form, Symbol>,
        changed: bool,
    }
    impl Cx<'_> {
        fn is_set_app(&self, form: &Form) -> bool {
            if let Form::App(head, _) = form {
                if let Form::Var(f) = head.as_ref() {
                    if let Some(Sort::Fun(_, ret)) = self.sig.get(f) {
                        return matches!(ret.as_ref(), Sort::Set(inner) if **inner == Sort::Obj);
                    }
                }
            }
            false
        }
        fn walk(&mut self, form: &Form) -> Form {
            if self.is_set_app(form) {
                let next_id = self.map.len();
                let name = *self
                    .map
                    .entry(form.clone())
                    .or_insert_with(|| Symbol::intern(&format!("$setapp{next_id}")));
                self.out_sig.insert(name, Sort::objset());
                self.changed = true;
                return Form::Var(name);
            }
            match form {
                Form::Var(_)
                | Form::IntLit(_)
                | Form::BoolLit(_)
                | Form::Null
                | Form::EmptySet => form.clone(),
                Form::Tree(es) => Form::Tree(es.iter().map(|e| self.walk(e)).collect()),
                Form::FiniteSet(es) => {
                    Form::FiniteSet(es.iter().map(|e| self.walk(e)).collect())
                }
                Form::And(ps) => Form::and(ps.iter().map(|p| self.walk(p)).collect()),
                Form::Or(ps) => Form::or(ps.iter().map(|p| self.walk(p)).collect()),
                Form::Unop(op, a) => Form::Unop(*op, Rc::new(self.walk(a))),
                Form::Old(a) => Form::Old(Rc::new(self.walk(a))),
                Form::Binop(op, a, b) => Form::binop(*op, self.walk(a), self.walk(b)),
                Form::Ite(c, t, e) => Form::Ite(
                    Rc::new(self.walk(c)),
                    Rc::new(self.walk(t)),
                    Rc::new(self.walk(e)),
                ),
                Form::App(h, args) => Form::app(
                    self.walk(h),
                    args.iter().map(|a| self.walk(a)).collect(),
                ),
                Form::Quant(k, bs, body) => {
                    Form::Quant(*k, bs.clone(), Rc::new(self.walk(body)))
                }
                Form::Lambda(bs, body) => {
                    Form::Lambda(bs.clone(), Rc::new(self.walk(body)))
                }
                Form::Compr(x, s, body) => {
                    Form::Compr(*x, s.clone(), Rc::new(self.walk(body)))
                }
            }
        }
    }
    let mut cx = Cx {
        sig,
        out_sig: sig.clone(),
        map: FxHashMap::default(),
        changed: false,
    };
    let walked = cx.walk(goal);
    if !cx.changed {
        return (walked, cx.out_sig, false);
    }
    // Congruence hypotheses per head symbol.
    let entries: Vec<(Form, Symbol)> =
        cx.map.iter().map(|(k, v)| (k.clone(), *v)).collect();
    let mut hyps: Vec<Form> = Vec::new();
    for (i, (t1, s1)) in entries.iter().enumerate() {
        for (t2, s2) in entries.iter().skip(i + 1) {
            let (Form::App(h1, a1), Form::App(h2, a2)) = (t1, t2) else {
                continue;
            };
            if h1 != h2 || a1.len() != a2.len() {
                continue;
            }
            let args_eq = Form::and(
                a1.iter()
                    .zip(a2.iter())
                    .map(|(x, y)| Form::eq(cx.walk(x), cx.walk(y)))
                    .collect(),
            );
            hyps.push(Form::implies(
                args_eq,
                Form::eq(Form::Var(*s1), Form::Var(*s2)),
            ));
        }
    }
    let full = hyps
        .into_iter()
        .rev()
        .fold(walked, |acc, h| Form::implies(h, acc));
    (full, cx.out_sig, true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use jahob_logic::form;

    fn dispatcher() -> Dispatcher {
        let mut sig: FxHashMap<Symbol, Sort> = FxHashMap::default();
        for (n, s) in [
            ("S", Sort::objset()),
            ("T", Sort::objset()),
            ("x", Sort::Obj),
            ("y", Sort::Obj),
            ("i", Sort::Int),
            ("j", Sort::Int),
            ("next", Sort::field(Sort::Obj)),
        ] {
            sig.insert(Symbol::intern(n), s);
        }
        sig.insert(Symbol::intern("Object.alloc"), Sort::objset());
        Dispatcher::new(sig, FxHashMap::default())
    }

    fn proved_by(d: &Dispatcher, src: &str) -> Option<ProverId> {
        match d.prove(&form(src)) {
            Verdict::Proved { prover, .. } => Some(prover),
            _ => None,
        }
    }

    #[test]
    fn routing_matches_fragments() {
        let d = dispatcher();
        assert_eq!(proved_by(&d, "x = x"), Some(ProverId::Simplifier));
        assert_eq!(proved_by(&d, "i < j --> i + 1 <= j"), Some(ProverId::Lia));
        assert_eq!(proved_by(&d, "S Int T <= S"), Some(ProverId::Bapa));
        assert_eq!(
            proved_by(&d, "x = y --> next x = next y"),
            Some(ProverId::Smt)
        );
        assert_eq!(
            proved_by(
                &d,
                "rtrancl_pt (% a b. next a = b) x y & \
                 rtrancl_pt (% a b. next a = b) y x2 \
                 --> rtrancl_pt (% a b. next a = b) x x2"
            ),
            Some(ProverId::Fol)
        );
    }

    #[test]
    fn counter_models_returned() {
        let d = dispatcher();
        match d.prove(&form("x : S --> x : T")) {
            Verdict::CounterModel(m) => {
                // The model genuinely refutes the goal.
                assert_eq!(m.eval_bool(&form("x : S --> x : T")), Ok(false));
            }
            other => panic!("expected counter-model, got {other:?}"),
        }
    }

    #[test]
    fn decomposition_routes_conjuncts_separately() {
        let d = dispatcher();
        // One conjunct is LIA, the other BAPA: only decomposition lets two
        // different provers share the goal.
        let v = d.prove(&form("(i < j --> i + 1 <= j) & S Int T <= S"));
        assert!(v.is_proved(), "{v:?}");
        assert!(d.stats.get("proved.presburger") >= 1);
        assert!(d.stats.get("proved.bapa") >= 1);
    }

    #[test]
    fn unknown_for_hard_goals() {
        let mut d = dispatcher();
        d.config.bmc_as_validity = false;
        d.config.bmc_bound = 2;
        // Satisfiable but not valid, and no small counter-model within
        // bound 2? — pick something refutable only at size ≥ 3 to land in
        // Unknown: "at most two distinct non-null objects exist".
        let v = d.prove(&form(
            "ALL a b c. a ~= null & b ~= null & c ~= null --> a = b | b = c | a = c",
        ));
        assert!(matches!(v, Verdict::Unknown), "{v:?}");
    }

    #[test]
    fn vardefs_unfold() {
        let mut defs = FxHashMap::default();
        defs.insert(
            Symbol::intern("mycontent"),
            form("{e. e : S | e : T}"),
        );
        let d = Dispatcher::new(dispatcher().sig, defs);
        // Abstractly unprovable; after unfolding it is BAPA-valid.
        let v = d.prove(&form("x : S --> x : mycontent"));
        assert!(v.is_proved(), "{v:?}");
    }
}
