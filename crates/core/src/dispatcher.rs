//! The prover portfolio and goal decomposition.
//!
//! Each proof obligation is simplified, split into conjuncts (pushing the
//! split under hypotheses and universal quantifiers — §3's "simple goal
//! decomposition technique"), and every piece is offered to the portfolio
//! in order of increasing generality and cost. Abstraction-function symbols
//! (`vardefs`) are unfolded on demand when the abstract attempt fails.

use crate::goal_cache::{self, CachedProof, GoalCache, Lookup};
use jahob_logic::transform::{simplify, split_conjuncts, unfold_defs};
use jahob_logic::{Form, Sort, SortCx};
use jahob_models::BmcVerdict;
use jahob_smt::lift_ite;
use jahob_util::budget::{Budget, Exhaustion, INFINITE_FUEL};
use jahob_util::chaos::{self, Fault, FaultPlan, Lie};
use jahob_util::counters::Stats;
use jahob_util::obs::{self, Event, Recorder, Sink};
use jahob_util::{pool, FxHashMap, Symbol};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Which component proved (or refuted) an obligation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ProverId {
    /// Equivalence-preserving simplification reduced the goal to `True`.
    Simplifier,
    /// The HOL `auto` tactic (structural reasoning).
    Hol,
    /// Presburger arithmetic (Cooper / Omega).
    Lia,
    /// Boolean Algebra with Presburger Arithmetic.
    Bapa,
    /// Nelson–Oppen EUF+LIA.
    Smt,
    /// First-order resolution with reachability axioms.
    Fol,
    /// Bounded model finder (validity up to the recorded bound).
    Bmc,
}

impl ProverId {
    /// Number of portfolio members (the circuit-breaker bank is indexed by
    /// prover).
    pub const COUNT: usize = 7;

    /// All portfolio members, in dispatch order.
    pub const ALL: [ProverId; ProverId::COUNT] = [
        ProverId::Simplifier,
        ProverId::Hol,
        ProverId::Lia,
        ProverId::Bapa,
        ProverId::Smt,
        ProverId::Fol,
        ProverId::Bmc,
    ];

    pub(crate) fn index(self) -> usize {
        match self {
            ProverId::Simplifier => 0,
            ProverId::Hol => 1,
            ProverId::Lia => 2,
            ProverId::Bapa => 3,
            ProverId::Smt => 4,
            ProverId::Fol => 5,
            ProverId::Bmc => 6,
        }
    }

    /// Inverse of the breaker-bank index, for decoding persisted cache
    /// records. `None` for out-of-range values (a corrupt or future-format
    /// payload), which callers treat as an unreplayable record.
    pub fn from_index(index: usize) -> Option<ProverId> {
        ProverId::ALL.get(index).copied()
    }

    /// The chaos-boundary site name for this prover's dispatcher attempt
    /// (see [`jahob_util::chaos`]). Static so polling a fault plan on the
    /// hot path allocates nothing.
    pub fn site(self) -> &'static str {
        match self {
            ProverId::Simplifier => "dispatch.simplifier",
            ProverId::Hol => "dispatch.hol-auto",
            ProverId::Lia => "dispatch.presburger",
            ProverId::Bapa => "dispatch.bapa",
            ProverId::Smt => "dispatch.nelson-oppen",
            ProverId::Fol => "dispatch.fol-resolution",
            ProverId::Bmc => "dispatch.bounded-models",
        }
    }

    /// The chaos-boundary site for this prover's *out-of-process* worker
    /// requests. Distinct from [`ProverId::site`] so a fault plan can aim
    /// IPC faults at the supervision layer without also perturbing the
    /// in-process attempt path.
    pub fn supervisor_site(self) -> &'static str {
        match self {
            ProverId::Simplifier => "supervisor.simplifier",
            ProverId::Hol => "supervisor.hol-auto",
            ProverId::Lia => "supervisor.presburger",
            ProverId::Bapa => "supervisor.bapa",
            ProverId::Smt => "supervisor.nelson-oppen",
            ProverId::Fol => "supervisor.fol-resolution",
            ProverId::Bmc => "supervisor.bounded-models",
        }
    }

    /// The display name as a static string, so event payloads carry it
    /// without allocating.
    pub fn name(self) -> &'static str {
        match self {
            ProverId::Simplifier => "simplifier",
            ProverId::Hol => "hol-auto",
            ProverId::Lia => "presburger",
            ProverId::Bapa => "bapa",
            ProverId::Smt => "nelson-oppen",
            ProverId::Fol => "fol-resolution",
            ProverId::Bmc => "bounded-models",
        }
    }
}

impl fmt::Display for ProverId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Which kind of definitive verdict a prover claimed — the payload of
/// [`FailureReason::Disagreement`], kept separate from [`Verdict`] so the
/// failure taxonomy stays `Copy`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum VerdictKind {
    Proved,
    Refuted,
}

impl fmt::Display for VerdictKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            VerdictKind::Proved => "proved",
            VerdictKind::Refuted => "refuted",
        })
    }
}

/// Why one prover's attempt on an obligation ended without a verdict.
/// Ordered least- to most-severe so merging attempts keeps the most
/// informative reason per prover.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FailureReason {
    /// The goal is outside the prover's fragment.
    Unsupported,
    /// The prover's circuit breaker was open; the attempt was skipped to
    /// protect the rest of the obligation's budget.
    CircuitOpen,
    /// The prover ran to completion without deciding the goal.
    GaveUp,
    /// The attempt's fuel allowance ran dry.
    FuelExhausted,
    /// The attempt hit the wall-clock deadline.
    Timeout,
    /// The prover panicked; the panic was caught and isolated.
    Panicked,
    /// The prover's worker process blew its memory ceiling (or an
    /// equivalent hard resource limit) and was reaped. Only produced by
    /// the process-isolation backend; the in-process path has no ceiling
    /// to hit.
    ResourceExceeded,
    /// The soundness watchdog demoted this prover's `Proved`: no
    /// independent portfolio member could confirm it.
    Unconfirmed,
    /// The soundness watchdog caught this prover claiming one definitive
    /// verdict while an independent check produced the opposite one. The
    /// most severe reason there is: somebody is lying.
    Disagreement {
        claimed: VerdictKind,
        witness: VerdictKind,
    },
}

impl fmt::Display for FailureReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FailureReason::Unsupported => f.write_str("unsupported"),
            FailureReason::CircuitOpen => f.write_str("circuit-open"),
            FailureReason::GaveUp => f.write_str("gave-up"),
            FailureReason::FuelExhausted => f.write_str("fuel-exhausted"),
            FailureReason::Timeout => f.write_str("timeout"),
            FailureReason::Panicked => f.write_str("panicked"),
            FailureReason::ResourceExceeded => f.write_str("resource-exceeded"),
            FailureReason::Unconfirmed => f.write_str("unconfirmed"),
            FailureReason::Disagreement { claimed, witness } => {
                write!(f, "disagreement (claimed {claimed}, witness {witness})")
            }
        }
    }
}

impl From<Exhaustion> for FailureReason {
    fn from(e: Exhaustion) -> FailureReason {
        match e {
            Exhaustion::Timeout => FailureReason::Timeout,
            Exhaustion::Fuel => FailureReason::FuelExhausted,
        }
    }
}

/// How a guarded prover attempt can fail. Budget exhaustion is the
/// cooperative path every prover reports; `Resource` is minted only by
/// the process-isolation backend when a worker blows a hard ceiling.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum AttemptError {
    Budget(Exhaustion),
    Resource,
}

impl From<Exhaustion> for AttemptError {
    fn from(e: Exhaustion) -> AttemptError {
        AttemptError::Budget(e)
    }
}

impl From<AttemptError> for FailureReason {
    fn from(e: AttemptError) -> FailureReason {
        match e {
            AttemptError::Budget(why) => FailureReason::from(why),
            AttemptError::Resource => FailureReason::ResourceExceeded,
        }
    }
}

/// Per-obligation failure taxonomy: which provers were tried and why each
/// one stopped. Attached to [`Verdict::Unknown`] so "unknown" is never a
/// bare shrug.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Diagnosis {
    /// One entry per prover that was actually attempted, carrying its most
    /// severe failure reason.
    pub attempts: Vec<(ProverId, FailureReason)>,
    /// Set when the obligation-level budget itself expired during dispatch
    /// (remaining provers were skipped, not blamed).
    pub obligation_spent: Option<FailureReason>,
}

impl Diagnosis {
    pub(crate) fn record(&mut self, prover: ProverId, reason: FailureReason) {
        match self.attempts.iter_mut().find(|(p, _)| *p == prover) {
            Some((_, r)) => *r = (*r).max(reason),
            None => self.attempts.push((prover, reason)),
        }
    }

    /// The recorded reason for `prover`, if it was attempted.
    pub fn reason(&self, prover: ProverId) -> Option<FailureReason> {
        self.attempts
            .iter()
            .find(|(p, _)| *p == prover)
            .map(|(_, r)| *r)
    }

    /// Fold an earlier pass's diagnosis into this one, keeping the most
    /// severe reason per prover (used when an escalated retry also fails:
    /// the final diagnosis covers both passes). Merging is keyed on the
    /// prover, never on arrival position, so folding the same set of
    /// attempts in any order yields the same per-prover reasons — the
    /// property that lets speculative race losers be merged in canonical
    /// portfolio order rather than wall-clock finish order.
    pub fn merge_from(&mut self, earlier: &Diagnosis) {
        for (prover, reason) in &earlier.attempts {
            self.record(*prover, *reason);
        }
        self.obligation_spent = self.obligation_spent.max(earlier.obligation_spent);
    }

    /// Structured JSON: the per-prover failure taxonomy plus the
    /// obligation-budget exhaustion marker, in attempt order. Takes the
    /// shared [`ReportRender`] switch for signature uniformity with the
    /// rest of the report tree; a diagnosis has no wall-clock fields,
    /// so both views render identically.
    pub fn to_json(&self, _render: crate::verify::ReportRender) -> String {
        use jahob_util::json::{array, Obj};
        let attempts = array(self.attempts.iter().map(|(prover, reason)| {
            Obj::new()
                .str("prover", prover.name())
                .str("reason", &reason.to_string())
                .finish()
        }));
        Obj::new()
            .raw("attempts", &attempts)
            .opt_str(
                "obligation_spent",
                self.obligation_spent.map(|r| r.to_string()).as_deref(),
            )
            .finish()
    }
}

impl fmt::Display for Diagnosis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.attempts.is_empty() {
            write!(f, "no prover attempted")?;
        } else {
            for (i, (prover, reason)) in self.attempts.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{prover}: {reason}")?;
            }
        }
        if let Some(reason) = self.obligation_spent {
            write!(f, " (obligation budget spent: {reason})")?;
        }
        Ok(())
    }
}

/// Outcome for one obligation.
#[derive(Clone, Debug)]
pub enum Verdict {
    /// Proved; which prover and (for BMC) up to which bound.
    Proved {
        prover: ProverId,
        bound: Option<u32>,
    },
    /// Refuted with a genuine counter-model (checked by the reference
    /// evaluator).
    CounterModel(Box<jahob_logic::Model>),
    /// No component could decide it; the diagnosis says which provers were
    /// tried and why each stopped.
    Unknown(Diagnosis),
}

impl Verdict {
    pub fn is_proved(&self) -> bool {
        matches!(self, Verdict::Proved { .. })
    }
}

/// Portfolio configuration (the ablation knobs of E6/E11).
#[derive(Clone, Debug)]
pub struct DispatchConfig {
    /// Split goals into conjuncts before dispatch.
    pub decompose: bool,
    /// Unfold `vardefs` when the abstract goal fails.
    pub unfold: bool,
    /// Counter-model search bound (0 disables BMC entirely).
    pub bmc_bound: u32,
    /// Accept BMC exhaustion as (bounded) validity. When false the model
    /// finder is used for counterexamples only.
    pub bmc_as_validity: bool,
    /// Resolution-prover effort.
    pub fol_iterations: usize,
    /// Wall-clock deadline per obligation (`None` = no deadline). When the
    /// deadline expires mid-portfolio the obligation resolves to a
    /// diagnosed `Unknown`; it is never silently weakened to `Proved`.
    pub obligation_timeout: Option<Duration>,
    /// Cooperative fuel per obligation ([`INFINITE_FUEL`] = unmetered).
    pub obligation_fuel: u64,
    /// Deterministic fault-injection plan (chaos testing). `None` — the
    /// default — keeps the fast path: the plan is polled per attempt, not
    /// per prover step. Replaces the old `inject_panic` test hook.
    pub fault_plan: Option<Arc<FaultPlan>>,
    /// Circuit breaker: consecutive hard failures (`Panicked`/`Timeout`)
    /// before a prover's breaker opens. `0` disables the breakers.
    pub breaker_threshold: u32,
    /// How many attempts an open breaker skips before half-opening for a
    /// probe. Counted in skipped attempts, not wall-clock, so breaker
    /// behavior is deterministic under test.
    pub breaker_cooldown: u32,
    /// Fuel granted to a half-open probe when the obligation is otherwise
    /// unmetered; metered obligations cap the probe at this or the normal
    /// slice, whichever is smaller.
    pub breaker_probe_fuel: u64,
    /// First-pass attempts get `remaining / divisor` fuel (min 1) so a
    /// metered obligation is never drained by its first prover; the
    /// escalated retry re-runs with everything left. `<= 1` restores
    /// undivided slices.
    pub attempt_fuel_divisor: u64,
    /// Retry an obligation that ended `FuelExhausted`/`Timeout` once more
    /// against the surviving provers with the leftover budget.
    pub escalating_retry: bool,
    /// Soundness watchdog: cross-check `Proved` against a second
    /// independent prover and `Refuted` against the reference evaluator;
    /// disagreement degrades to `Unknown`, never a silent wrong answer.
    pub cross_check: bool,
    /// Speculative racing: fan the remotable provers' first-pass attempts
    /// out concurrently and commit the results through the canonical
    /// sequential walk, so verdicts, diagnoses, breaker behavior, and the
    /// canonical event stream are bit-for-bit identical to the sequential
    /// path. Races only fire for unmetered obligations (no deadline,
    /// infinite fuel) with every racer's breaker closed and no chaos plan
    /// armed; everything else falls back to sequential dispatch. Stays out
    /// of [`DispatchConfig::cache_digest`]: racing changes wall-clock, not
    /// which proofs are acceptable.
    pub racing: bool,
    /// Chaos knob for the racing path: deterministically revoke some
    /// racers' budgets *before they start* (keyed on this seed, the goal
    /// fingerprint, and the racer's canonical index — never on wall-clock
    /// or worker scheduling). A cancelled racer the commit walk turns out
    /// to need is transparently re-run inline, so spurious cancellation
    /// can cost time but never flip a verdict. `None` (the default)
    /// disables the fault. Out of `cache_digest` for the same reason as
    /// `racing`.
    pub race_cancel_seed: Option<u64>,
    /// Relevance slicing: decompose each piece into a sequent, drop
    /// hypotheses outside the goal's symbol cone, and prove the sliced
    /// sequent first, widening the cone on `Unknown` with the full piece
    /// as the ladder's last rung. `Proved` on a slice is sound
    /// (weakening); a counter-model on a slice is re-confirmed against
    /// the full piece and widens when it does not survive, so slicing
    /// can never flip a verdict's classification. Slicing happens
    /// *before* `goal_cache::normalize`/`fingerprint`, so pieces that
    /// differ only in irrelevant hypotheses collapse to one cache entry.
    /// Like racing, the ladder stands down when a fault plan or armed
    /// chaos session is present (faults are replayed per attempt, and
    /// the ladder changes the attempt sequence) and when the obligation
    /// is metered (the ladder re-spends budget per rung). Non-final
    /// rungs run under a metered [`SLICE_RUNG_FUEL`] child budget —
    /// slices are formulas the plain walk never dispatches, and a
    /// prover with no termination guarantee on them must be cut off
    /// deterministically rather than hang the pipeline. Stays out of
    /// [`DispatchConfig::cache_digest`]: a proof of a sliced sequent is
    /// a proof of that sequent under any config — slicing changes which
    /// goals get looked up, not which proofs are acceptable.
    pub slicing: bool,
}

impl DispatchConfig {
    /// Digest of the semantics-affecting knobs, folded into every goal-cache
    /// fingerprint. Two configs with equal digests accept exactly the same
    /// proofs, so their runs may share cache entries. Budget and robustness
    /// knobs (timeout, fuel, breakers, retry, `cross_check`) stay out on
    /// purpose: a proof found under one budget is a proof under any other,
    /// and the watchdog re-confirms cache hits itself.
    pub fn cache_digest(&self) -> u64 {
        let mut d = 0x6a09_e667_f3bc_c909u64;
        for knob in [
            self.decompose as u64,
            self.unfold as u64,
            self.bmc_bound as u64,
            self.bmc_as_validity as u64,
            self.fol_iterations as u64,
        ] {
            d = chaos::splitmix64(d ^ knob);
        }
        d
    }
}

impl Default for DispatchConfig {
    fn default() -> Self {
        DispatchConfig {
            decompose: true,
            unfold: true,
            bmc_bound: 3,
            bmc_as_validity: true,
            fol_iterations: 700,
            obligation_timeout: None,
            obligation_fuel: INFINITE_FUEL,
            fault_plan: None,
            breaker_threshold: 3,
            breaker_cooldown: 2,
            breaker_probe_fuel: 50_000,
            attempt_fuel_divisor: 4,
            escalating_retry: true,
            cross_check: false,
            racing: false,
            race_cancel_seed: None,
            slicing: false,
        }
    }
}

// ---- circuit breakers ----------------------------------------------------

/// Breaker states, stored as `u64` in an atomic cell.
/// Sliced rungs per relevance ladder before the full piece (cone depths
/// `1..=N`). Three covers every chain the cone can usefully distinguish:
/// deeper cones almost always hit the fixpoint, which the ladder skips.
const MAX_SLICED_RUNGS: usize = 3;

/// Fuel allowance for each *sliced* rung of the widening ladder. Sliced
/// rungs are speculation: slicing sends provers formulas the plain walk
/// never dispatches, and nothing guarantees termination on those (a
/// resolution or enumeration loop that gives up fast on the full piece
/// can diverge on a slice of it). Every non-final rung therefore runs
/// under a metered child budget — a runaway prover is cut off
/// deterministically, the rung resolves `Unknown`, and the ladder
/// widens; the final rung runs under the obligation's own (unmetered)
/// budget, reproducing the unsliced dispatch exactly. The allowance is
/// deliberately small: a slice pays off precisely when it is *easy*
/// (the corpus' winning slices prove in a handful of cheap attempts),
/// and a rung that fails burns its whole allowance across every
/// portfolio member, so generosity here multiplies into the ladder's
/// overhead on refutable or hard pieces. A provable slice that does
/// starve merely widens — the final rung still settles the piece.
const SLICE_RUNG_FUEL: u64 = 20_000;

/// Work ceiling for re-confirming a sliced counter-model against the
/// *full* piece with the reference evaluator. `Model::eval_bool` has no
/// budget of its own and enumerates every quantifier domain, so its cost
/// is bounded by `Π domain(binder)` per nesting level — harmless on the
/// small pieces bounded model search refutes, explosive on a deep WP
/// chain. When the bound exceeds this cap the confirmation is skipped
/// and the model is treated as spurious, which is always sound: the
/// ladder widens and the final rung re-dispatches the complete piece.
const SPURIOUS_CONFIRM_EVAL_CAP: u64 = 100_000;

/// Size of the domain `Model::domain` would enumerate for `sort`, as an
/// upper bound (saturating; unsupported sorts read as "too big").
fn model_domain_size(m: &jahob_logic::Model, sort: &Sort) -> u64 {
    match sort {
        Sort::Bool => 2,
        Sort::Int => {
            let (lo, hi) = m.int_range;
            hi.saturating_sub(lo).saturating_add(1).max(0) as u64
        }
        Sort::Set(inner) => {
            let base = model_domain_size(m, inner).min(63);
            1u64 << base
        }
        Sort::Fun(_, _) => u64::MAX,
        // `Obj`, and unelaborated `Var` binders which default to obj.
        _ => u64::from(m.universe) + 1,
    }
}

/// Upper bound on the number of evaluation steps `Model::eval_bool`
/// performs on `form`: node count, with every binder's body multiplied
/// by its enumeration fan-out. Saturating throughout.
fn eval_cost_bound(m: &jahob_logic::Model, form: &Form) -> u64 {
    let seq = |parts: &[Form]| {
        parts
            .iter()
            .fold(1u64, |acc, f| acc.saturating_add(eval_cost_bound(m, f)))
    };
    match form {
        Form::Var(_) | Form::IntLit(_) | Form::BoolLit(_) | Form::Null | Form::EmptySet => 1,
        Form::FiniteSet(parts) | Form::And(parts) | Form::Or(parts) | Form::Tree(parts) => {
            seq(parts)
        }
        Form::Unop(_, a) | Form::Old(a) => 1u64.saturating_add(eval_cost_bound(m, a)),
        Form::Binop(_, a, b) => 1u64
            .saturating_add(eval_cost_bound(m, a))
            .saturating_add(eval_cost_bound(m, b)),
        Form::App(head, args) => eval_cost_bound(m, head).saturating_add(seq(args)),
        Form::Ite(c, t, e) => 1u64
            .saturating_add(eval_cost_bound(m, c))
            .saturating_add(eval_cost_bound(m, t))
            .saturating_add(eval_cost_bound(m, e)),
        Form::Quant(_, binders, body) | Form::Lambda(binders, body) => {
            let fan = binders.iter().fold(1u64, |acc, (_, sort)| {
                acc.saturating_mul(model_domain_size(m, sort))
            });
            fan.saturating_mul(eval_cost_bound(m, body))
                .saturating_add(1)
        }
        Form::Compr(_, sort, body) => model_domain_size(m, sort)
            .saturating_mul(eval_cost_bound(m, body))
            .saturating_add(1),
    }
}

const BREAKER_CLOSED: u64 = 0;
const BREAKER_OPEN: u64 = 1;
const BREAKER_HALF_OPEN: u64 = 2;

#[derive(Debug, Default)]
struct BreakerCell {
    /// `BREAKER_CLOSED` / `BREAKER_OPEN` / `BREAKER_HALF_OPEN`.
    state: AtomicU64,
    /// Consecutive hard failures observed while closed.
    consecutive: AtomicU64,
    /// Attempts left to skip before an open breaker half-opens.
    cooldown: AtomicU64,
}

/// What the breaker gate says about the next attempt.
enum Gate {
    /// Breaker closed: attempt normally.
    Pass,
    /// Breaker half-open: attempt with a small probe budget.
    Probe,
    /// Breaker open and cooling down: skip the attempt.
    Skip,
}

/// One circuit breaker per portfolio member. A prover that keeps panicking
/// or timing out stops being offered obligations (protecting the shared
/// budget from a reasoner that has gone bad), then is probed with a small
/// budget slice after a cooldown and readmitted if the probe behaves.
///
/// State lives in atomics so `&Dispatcher` is shareable across the worker
/// pool. All counter updates are read-modify-write operations, so
/// concurrent observers never lose a tick; `Relaxed` ordering is enough
/// because each cell's fields are independent saturating counters — no
/// decision reads one atomic to justify writing another with a
/// happens-before requirement between them.
#[derive(Debug, Default)]
pub struct BreakerBank {
    cells: [BreakerCell; ProverId::COUNT],
}

impl BreakerBank {
    /// Mutation-free peek: is this prover's breaker fully closed? Used as
    /// a speculative-racing precondition — unlike [`BreakerBank::gate`]
    /// it never consumes a cooldown tick or claims a probe, so peeking
    /// before a race leaves the breaker state machine exactly where the
    /// sequential walk (and its `gate` calls) expects it.
    fn peek_closed(&self, prover: ProverId) -> bool {
        self.cells[prover.index()].state.load(Ordering::Relaxed) == BREAKER_CLOSED
    }

    fn gate(&self, prover: ProverId) -> Gate {
        let cell = &self.cells[prover.index()];
        match cell.state.load(Ordering::Relaxed) {
            BREAKER_CLOSED => Gate::Pass,
            // Half-open means a probe is *in flight*: the state is entered
            // only by the cooldown drainer below and left only by that
            // probe's `observe`. Admitting every caller who glimpses
            // half-open would stampede a prover that just crash-looped
            // with one probe per racing worker — exactly one caller owns
            // the probe; everyone else skips until its verdict is in.
            BREAKER_HALF_OPEN => Gate::Skip,
            _ => {
                // Atomically consume one cooldown tick; whoever drains the
                // last tick flips the breaker half-open for a probe.
                let prev = cell
                    .cooldown
                    .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |cd| {
                        Some(cd.saturating_sub(1))
                    })
                    .expect("fetch_update closure always returns Some");
                if prev > 0 {
                    Gate::Skip
                } else {
                    cell.state.store(BREAKER_HALF_OPEN, Ordering::Relaxed);
                    Gate::Probe
                }
            }
        }
    }

    /// Feed an attempt's outcome back into the breaker. Returns the state
    /// transition this caused (`"open"` / `"reopen"` / `"close"`), if any,
    /// so the caller can emit it as an observability event — the bank
    /// itself stays a pure state machine.
    fn observe(
        &self,
        prover: ProverId,
        probing: bool,
        failure: Option<FailureReason>,
        config: &DispatchConfig,
    ) -> Option<&'static str> {
        let cell = &self.cells[prover.index()];
        let hard = matches!(
            failure,
            Some(FailureReason::Panicked)
                | Some(FailureReason::Timeout)
                | Some(FailureReason::ResourceExceeded)
        );
        if hard {
            if probing {
                // The probe misbehaved too: straight back to open.
                cell.state.store(BREAKER_OPEN, Ordering::Relaxed);
                cell.cooldown
                    .store(config.breaker_cooldown as u64, Ordering::Relaxed);
                Some("reopen")
            } else {
                let streak = cell.consecutive.fetch_add(1, Ordering::Relaxed) + 1;
                if streak >= config.breaker_threshold as u64 {
                    cell.state.store(BREAKER_OPEN, Ordering::Relaxed);
                    cell.cooldown
                        .store(config.breaker_cooldown as u64, Ordering::Relaxed);
                    cell.consecutive.store(0, Ordering::Relaxed);
                    Some("open")
                } else {
                    None
                }
            }
        } else {
            // Success, or a soft failure (gave up / fragment / fuel): the
            // prover is behaving; hard-failure streak resets.
            cell.consecutive.store(0, Ordering::Relaxed);
            if probing {
                cell.state.store(BREAKER_CLOSED, Ordering::Relaxed);
                Some("close")
            } else {
                None
            }
        }
    }
}

/// The dispatcher: signature + definitions + portfolio.
pub struct Dispatcher {
    pub sig: FxHashMap<Symbol, Sort>,
    /// `vardefs`: abstraction-function definitions.
    pub defs: FxHashMap<Symbol, Form>,
    pub config: DispatchConfig,
    pub stats: Stats,
    /// Structured observability (see [`jahob_util::obs`]): every cache
    /// consultation, prover attempt, breaker transition, retry escalation,
    /// chaos injection, and watchdog check is recorded here as a typed
    /// event. Disabled by default — the disabled check is one pointer test
    /// per site and event payloads are never built.
    pub recorder: Recorder,
    /// Run-wide normalized-goal cache, shared (via `Arc`) across the
    /// dispatchers of one verification run. `None` disables caching.
    pub cache: Option<Arc<GoalCache>>,
    /// Out-of-process execution backend. When set, remotable prover
    /// attempts run in supervised worker children; crashes and quarantine
    /// degrade gracefully to the in-process path. `None` (the default)
    /// keeps everything in-process.
    pub supervisor: Option<Arc<crate::worker::ProcessBackend>>,
    /// Raw sink for schedule-dependent racing events (`race.*`): like the
    /// supervisor's `spawn`/`restart` events they go straight to the sink,
    /// bypassing the recorder, so the canonical (buffered) stream stays
    /// bit-for-bit identical with racing on or off. `None` still maintains
    /// the `race.*` counters.
    pub raw_sink: Option<Arc<dyn Sink>>,
    /// Adaptive portfolio statistics (see [`crate::adaptive`]): consulted
    /// for the race *start order* only — committed results always replay
    /// in canonical portfolio order — and updated with each race's
    /// outcomes. `None` races in canonical start order.
    pub adaptive: Option<Arc<crate::adaptive::AdaptiveStats>>,
    /// Per-prover circuit breakers (state persists across obligations).
    breakers: BreakerBank,
}

/// How one pass over the portfolio should behave.
#[derive(Clone, Copy, Default)]
struct AttemptCtx<'a> {
    /// Escalated passes get undivided budget slices.
    escalated: bool,
    /// Retry pass: only re-attempt provers whose first-pass reason was
    /// recoverable (`FuelExhausted`/`Timeout`) or that were never tried.
    retry_only: Option<&'a Diagnosis>,
    /// Watchdog confirmation pass: the claiming prover may not confirm
    /// itself.
    exclude: Option<ProverId>,
}

impl<'a> AttemptCtx<'a> {
    fn first() -> Self {
        AttemptCtx::default()
    }

    fn retry(first_pass: &'a Diagnosis) -> Self {
        AttemptCtx {
            escalated: true,
            retry_only: Some(first_pass),
            exclude: None,
        }
    }

    fn confirm(claimer: ProverId) -> Self {
        AttemptCtx {
            escalated: true,
            retry_only: None,
            exclude: Some(claimer),
        }
    }
}

impl Dispatcher {
    pub fn new(sig: FxHashMap<Symbol, Sort>, defs: FxHashMap<Symbol, Form>) -> Self {
        // Stand-alone dispatchers (the `prove` / `governed_prove`
        // examples, unit tests) honor `JAHOB_TRACE=1` by streaming the
        // event outline to stderr, like the pre-pipeline eprintln!s did.
        // The verification pipeline always installs its own recorder, so
        // this default never double-prints there.
        let recorder = if jahob_util::trace_enabled() {
            Recorder::streaming(Arc::new(obs::StderrSink))
        } else {
            Recorder::disabled()
        };
        Dispatcher {
            sig,
            defs,
            config: DispatchConfig::default(),
            stats: Stats::new(),
            recorder,
            cache: None,
            supervisor: None,
            raw_sink: None,
            adaptive: None,
            breakers: BreakerBank::default(),
        }
    }

    /// Emit one observability event and apply the counter increments it
    /// implies ([`Event::stat_increments`]). The event is the single
    /// source of truth for those counters, so the stats table and the
    /// event stream cannot disagree. Counters are maintained even when
    /// the recorder is disabled — every call site here is off the
    /// no-observation fast path (a cache consultation, a breaker
    /// transition, a finished prover attempt), where building the event
    /// is noise against the work it describes.
    fn emit(&self, event: Event) {
        event.stat_increments(|name, delta| self.stats.add(name, delta));
        self.recorder.record_with(|| event);
    }

    /// Emit a schedule-dependent event (`race.*`) straight to the raw
    /// sink, bypassing the recorder. The counters still tick — they are
    /// flagged unstable by the report — but the canonical stream never
    /// sees these events, which is what keeps it identical racing on/off.
    fn emit_raw(&self, event: Event) {
        event.stat_increments(|name, delta| self.stats.add(name, delta));
        if let Some(sink) = &self.raw_sink {
            sink.emit(&event);
        }
    }

    /// Elaborate a goal against the signature (resolving `<=`/`-`/`=`
    /// overloads) and return the *goal-specific* signature: verification
    /// conditions contain fresh havoc/snapshot symbols whose sorts only
    /// inference can recover. Falls back to the raw goal and the base
    /// signature when inference fails.
    fn elaborate(&self, goal: &Form) -> (Form, FxHashMap<Symbol, Sort>) {
        let mut cx = SortCx::new();
        for (name, sort) in &self.sig {
            cx.declare(*name, sort.clone());
        }
        match cx.check_bool(goal) {
            Ok(elaborated) => (elaborated, cx.resolved_sig()),
            Err(_) => (goal.clone(), self.sig.clone()),
        }
    }

    /// The per-obligation budget this dispatcher's configuration implies.
    pub fn obligation_budget(&self) -> Budget {
        Budget::new(self.config.obligation_timeout, self.config.obligation_fuel)
    }

    /// Prove one obligation under the configured per-obligation budget.
    pub fn prove(&self, goal: &Form) -> Verdict {
        self.prove_governed(goal, &self.obligation_budget())
    }

    /// Prove one obligation under an explicit budget. Exhaustion degrades
    /// gracefully: the prover that blew the budget is diagnosed, the rest
    /// of the portfolio is skipped, and the verdict is `Unknown` — never a
    /// weakened `Proved`.
    pub fn prove_governed(&self, goal: &Form, budget: &Budget) -> Verdict {
        // Arm the fault plan on this thread so prover entry crates' chaos
        // boundaries see it too; the guard holds until dispatch returns.
        // Seeded plans pre-designate their lying site from the seed: the
        // single-liar role must not go to whichever prover happens to roll
        // `WrongVerdict` first, or parallel runs diverge by arrival order.
        let _chaos = self.config.fault_plan.clone().map(|plan| {
            if plan.is_seeded() {
                let pick =
                    (chaos::splitmix64(plan.seed() ^ 0x11a2_0000_11a2) as usize) % ProverId::COUNT;
                let _ = plan.claim_liar(ProverId::ALL[pick].site());
            }
            chaos::arm(plan)
        });
        // Scope this dispatcher's recorder on the thread so leaf code with
        // no dispatcher reference (chaos boundaries inside prover crates)
        // contributes its events to the same stream.
        let _obs = obs::scope(&self.recorder);
        let (elaborated, goal_sig) = self.elaborate(&lift_ite(goal));
        let simplified = simplify(&elaborated);
        if simplified == Form::tt() {
            self.stats.bump("proved.simplifier");
            return Verdict::Proved {
                prover: ProverId::Simplifier,
                bound: None,
            };
        }
        // Key the seeded chaos decisions for this dispatch on the
        // obligation's *content*, so replays and parallel schedules see
        // the same fault sequence per obligation regardless of the order
        // obligations reach the prover boundaries.
        let _scope = self.config.fault_plan.as_ref().map(|_| {
            let normal = goal_cache::normalize(&simplified);
            let fp = goal_cache::fingerprint(&normal, &goal_sig, self.config.cache_digest());
            chaos::obligation_scope(goal_cache::obligation_key(fp))
        });
        let pieces = if self.config.decompose {
            split_conjuncts(&simplified)
        } else {
            vec![simplified.clone()]
        };
        self.stats.add("goal.pieces", pieces.len() as u64);
        let mut worst_bound: Option<u32> = None;
        let mut weakest: Option<ProverId> = None;
        for piece in pieces {
            match self.prove_piece(&piece, budget, &goal_sig) {
                Verdict::Proved { prover, bound } => {
                    if bound.is_some() {
                        worst_bound = worst_bound.max(bound);
                    }
                    weakest = Some(match (weakest, prover) {
                        (None, p) => p,
                        (Some(ProverId::Bmc), _) | (_, ProverId::Bmc) => ProverId::Bmc,
                        (Some(w), _) => w,
                    });
                }
                other => return other,
            }
        }
        Verdict::Proved {
            prover: weakest.unwrap_or(ProverId::Simplifier),
            bound: worst_bound,
        }
    }

    /// Prove one piece of a split obligation, through the relevance-slicing
    /// widening ladder when it is engaged, else directly.
    ///
    /// The ladder (Jahob's assumption-filtering approximation): decompose
    /// the piece into a sequent, dispatch the slice keeping only hypotheses
    /// in the goal's symbol cone, and widen the cone one step on `Unknown`,
    /// with the unmodified piece as the final rung. `Proved` on any rung is
    /// sound by weakening. A counter-model on a sliced rung is re-confirmed
    /// against the *full* piece with the watchdog's reference check; one
    /// that does not survive is spurious — it may rely on a dropped
    /// hypothesis being false — and widens instead of refuting. The final
    /// rung dispatches the piece bit-for-bit as an unsliced run would, so
    /// a ladder that falls all the way through reproduces the unsliced
    /// verdict and diagnosis exactly.
    ///
    /// Eligibility mirrors racing: unmetered obligations only (each rung
    /// re-spends budget, so a metered ladder could exhaust fuel a direct
    /// dispatch would have spent on the full piece), and no fault plan or
    /// armed chaos session (faults are consumed per attempt, and the
    /// ladder changes the attempt sequence, which would make seeded chaos
    /// replays schedule-shaped).
    fn prove_piece(
        &self,
        piece: &Form,
        budget: &Budget,
        goal_sig: &FxHashMap<Symbol, Sort>,
    ) -> Verdict {
        let engaged = self.config.slicing
            && self.config.fault_plan.is_none()
            && !chaos::armed()
            && budget.time_remaining().is_none()
            && budget.fuel_remaining() == INFINITE_FUEL;
        if !engaged {
            return self.dispatch_piece(piece, budget, goal_sig);
        }
        let rungs = jahob_logic::sequent::relevance_ladder(piece, MAX_SLICED_RUNGS);
        let last = rungs.len() - 1;
        if last == 0 {
            // Nothing to drop at any depth: the ladder is just the piece.
            return self.dispatch_piece(piece, budget, goal_sig);
        }
        self.emit(Event::SliceApplied {
            kept: rungs[0].kept as u64,
            dropped: rungs[0].dropped as u64,
        });
        for (i, rung) in rungs.iter().enumerate() {
            if i > 0 {
                self.emit(Event::SliceWidened {
                    rung: (i + 1) as u64,
                    kept: rung.kept as u64,
                });
            }
            // Non-final rungs are metered (see `SLICE_RUNG_FUEL`); the
            // final rung inherits the obligation's unmetered budget.
            let rung_budget;
            let rung_budget = if i == last {
                budget
            } else {
                rung_budget = budget.child(None, SLICE_RUNG_FUEL);
                &rung_budget
            };
            match self.dispatch_piece(&rung.form, rung_budget, goal_sig) {
                proved @ Verdict::Proved { .. } => return proved,
                Verdict::CounterModel(m) => {
                    if i == last {
                        // The slice and the piece coincide: the direct
                        // dispatch's verdict stands unchallenged.
                        return Verdict::CounterModel(m);
                    }
                    // A counter-model found on a *slice* may only exploit
                    // a dropped hypothesis. Re-confirm it against the full
                    // piece with the reference evaluator — but only when
                    // enumeration is affordable (see
                    // `SPURIOUS_CONFIRM_EVAL_CAP`); otherwise treat it as
                    // spurious and widen, which the final rung makes sound.
                    if m.universe > 0
                        && eval_cost_bound(&m, piece) <= SPURIOUS_CONFIRM_EVAL_CAP
                        && m.eval_bool(piece) == Ok(false)
                    {
                        return Verdict::CounterModel(m);
                    }
                    self.emit(Event::SliceSpurious {
                        rung: (i + 1) as u64,
                    });
                }
                unknown @ Verdict::Unknown(_) => {
                    // The needed assumption may have been sliced away;
                    // only the full rung's diagnosis is authoritative.
                    if i == last {
                        return unknown;
                    }
                }
            }
        }
        unreachable!("the ladder's final rung always returns")
    }

    fn dispatch_piece(
        &self,
        piece: &Form,
        budget: &Budget,
        goal_sig: &FxHashMap<Symbol, Sort>,
    ) -> Verdict {
        let start = Instant::now();
        // Canonicalize before dispatch: bound binders go positional, fresh
        // havoc/snapshot names go first-occurrence. The provers then never
        // see the global fresh-counter suffixes — which vary with worker
        // scheduling — so their search is identical across runs and thread
        // counts, and the cache key falls out of the same pass.
        let normal = goal_cache::normalize(piece);
        if self.recorder.enabled() {
            // The fingerprint is content-determined, so the piece span is
            // identifiable in the stream even when the cache is off.
            let fp = goal_cache::fingerprint(&normal, goal_sig, self.config.cache_digest());
            self.recorder.record_with(|| Event::PieceStart {
                fingerprint: Some(fp),
                size: normal.form.size() as u64,
            });
        }
        let verdict = self.prove_piece_routed(&normal, budget, goal_sig);
        self.recorder.record_with(|| Event::PieceEnd {
            verdict: match &verdict {
                Verdict::Proved { .. } => "proved",
                Verdict::CounterModel(_) => "refuted",
                Verdict::Unknown(_) => "unknown",
            },
        });
        self.stats
            .add("time.micros", start.elapsed().as_micros() as u64);
        verdict
    }

    /// Route one canonicalized piece through the goal cache when one is
    /// attached. The cache stands down while a *seeded* chaos plan is
    /// armed: seeded fault decisions are keyed per obligation, so
    /// replaying one obligation's (possibly fault-riddled) outcome for
    /// another would leak faults across obligations in schedule-dependent
    /// ways.
    fn prove_piece_routed(
        &self,
        normal: &goal_cache::NormalGoal,
        budget: &Budget,
        goal_sig: &FxHashMap<Symbol, Sort>,
    ) -> Verdict {
        let piece = &normal.form;
        let seeded_chaos = self
            .config
            .fault_plan
            .as_deref()
            .is_some_and(FaultPlan::is_seeded);
        let Some(cache) = self.cache.as_deref().filter(|_| !seeded_chaos) else {
            return self.prove_piece_checked(piece, budget);
        };
        let key = goal_cache::fingerprint(normal, goal_sig, self.config.cache_digest());
        match cache.begin(key) {
            Lookup::Hit(proof) => {
                self.emit(Event::CacheLookup {
                    fingerprint: key,
                    hit: true,
                    saved_fuel: proof.fuel,
                });
                let verdict = Verdict::Proved {
                    prover: proof.prover,
                    bound: proof.bound,
                };
                if self.config.cross_check && proof.prover != ProverId::Simplifier {
                    // A hit does not bypass the watchdog: the cached claim
                    // is re-confirmed by an independent prover, and an
                    // entry that cannot be confirmed is evicted and
                    // demoted — a lying prover's cached verdict dies here.
                    let checked = self.cross_check(piece, verdict, budget);
                    if !checked.is_proved() {
                        self.emit(Event::CacheEvict { fingerprint: key });
                        cache.evict(key);
                    }
                    checked
                } else {
                    verdict
                }
            }
            Lookup::Miss(claim) => {
                self.emit(Event::CacheLookup {
                    fingerprint: key,
                    hit: false,
                    saved_fuel: 0,
                });
                let fuel_before = budget.fuel_remaining();
                let verdict = self.prove_piece_checked(piece, budget);
                if let Verdict::Proved { prover, bound } = &verdict {
                    let fuel = if fuel_before == INFINITE_FUEL {
                        0
                    } else {
                        fuel_before - budget.fuel_remaining()
                    };
                    claim.fill(CachedProof {
                        prover: *prover,
                        bound: *bound,
                        fuel,
                    });
                }
                // Unknown or CounterModel: the claim drops here, releasing
                // the key — budget-starved `Unknown`s are never cached, and
                // refutations keep their `Rc`-laden models thread-local.
                verdict
            }
        }
    }

    fn prove_piece_checked(&self, piece: &Form, budget: &Budget) -> Verdict {
        let mut verdict = self.prove_piece_attempts(piece, budget);
        if self.config.cross_check {
            verdict = self.cross_check(piece, verdict, budget);
        }
        verdict
    }

    /// First pass over the portfolio with divided budget slices; if the
    /// obligation ended `FuelExhausted`/`Timeout` while budget remains, one
    /// escalated retry against the surviving provers with everything left.
    fn prove_piece_attempts(&self, piece: &Form, budget: &Budget) -> Verdict {
        let first = self.prove_piece_inner(piece, budget, &AttemptCtx::first());
        let Verdict::Unknown(diag) = first else {
            return first;
        };
        let recoverable = diag
            .attempts
            .iter()
            .any(|(_, r)| matches!(r, FailureReason::FuelExhausted | FailureReason::Timeout));
        let budget_left = budget.poll_deadline().is_ok() && budget.fuel_remaining() > 0;
        if !(self.config.escalating_retry && recoverable && budget_left) {
            return Verdict::Unknown(diag);
        }
        self.emit(Event::RetryEscalated {
            fuel: budget.fuel_remaining(),
        });
        match self.prove_piece_inner(piece, budget, &AttemptCtx::retry(&diag)) {
            Verdict::Unknown(mut second) => {
                second.merge_from(&diag);
                Verdict::Unknown(second)
            }
            decided => {
                self.emit(Event::RetryRecovered);
                decided
            }
        }
    }

    /// The soundness watchdog: a definitive verdict must survive an
    /// independent second opinion. `Proved` is re-proved by the portfolio
    /// minus the claiming prover; `Refuted` is re-checked against the
    /// reference model evaluator. Disagreement degrades the verdict to a
    /// diagnosed `Unknown` — never a silent wrong answer.
    fn cross_check(&self, piece: &Form, verdict: Verdict, budget: &Budget) -> Verdict {
        match verdict {
            // The simplifier is the trusted equivalence-preserving core;
            // re-proving `True` would be circular anyway.
            Verdict::Proved { prover, bound } if prover != ProverId::Simplifier => {
                self.emit(Event::Watchdog { outcome: "checked" });
                match self.prove_piece_inner(piece, budget, &AttemptCtx::confirm(prover)) {
                    Verdict::Proved { .. } => {
                        self.emit(Event::Watchdog {
                            outcome: "confirmed",
                        });
                        Verdict::Proved { prover, bound }
                    }
                    Verdict::CounterModel(_) => {
                        self.emit(Event::Watchdog {
                            outcome: "disagreement",
                        });
                        let mut diag = Diagnosis::default();
                        diag.record(
                            prover,
                            FailureReason::Disagreement {
                                claimed: VerdictKind::Proved,
                                witness: VerdictKind::Refuted,
                            },
                        );
                        Verdict::Unknown(diag)
                    }
                    Verdict::Unknown(mut diag) => {
                        // Nobody else could decide it either way. Under a
                        // watchdog policy an unconfirmable Proved does not
                        // stand: conservative, and the only stance that
                        // makes a single lying prover harmless.
                        self.emit(Event::Watchdog {
                            outcome: "unconfirmed",
                        });
                        diag.record(prover, FailureReason::Unconfirmed);
                        Verdict::Unknown(diag)
                    }
                }
            }
            Verdict::CounterModel(m) => {
                // The reference evaluator is the independent opinion for
                // refutations. Note this re-checks against the dispatched
                // piece itself, so a counter-model found only for a
                // vardef-unfolded variant is conservatively demoted. The
                // model finder's searches start at universe 1, so a model
                // claiming the degenerate empty universe is structurally
                // fabricated no matter what it evaluates to.
                self.emit(Event::Watchdog { outcome: "checked" });
                if m.universe > 0 && m.eval_bool(piece) == Ok(false) {
                    self.emit(Event::Watchdog {
                        outcome: "confirmed",
                    });
                    Verdict::CounterModel(m)
                } else {
                    self.emit(Event::Watchdog {
                        outcome: "disagreement",
                    });
                    let mut diag = Diagnosis::default();
                    // Counter-models carry no prover attribution; the model
                    // finder is the portfolio's only legitimate source.
                    diag.record(
                        ProverId::Bmc,
                        FailureReason::Disagreement {
                            claimed: VerdictKind::Refuted,
                            witness: VerdictKind::Proved,
                        },
                    );
                    Verdict::Unknown(diag)
                }
            }
            v => v,
        }
    }

    /// Run one prover's attempt in isolation: skip it outright if the
    /// obligation budget is already spent, gate it through the prover's
    /// circuit breaker, apply any injected fault from the armed chaos plan,
    /// catch panics, translate budget exhaustion into the failure taxonomy,
    /// and charge whatever fuel the attempt burned back to the obligation.
    fn guard(
        &self,
        prover: ProverId,
        budget: &Budget,
        diag: &mut Diagnosis,
        ctx: &AttemptCtx<'_>,
        body: impl FnOnce(&Budget, &mut Diagnosis) -> Result<Option<Verdict>, AttemptError>,
    ) -> Option<Verdict> {
        // Watchdog confirmation: the claimer may not confirm itself.
        if ctx.exclude == Some(prover) {
            return None;
        }
        // Escalated retry: only provers that ran out of budget (or were
        // never reached) get a second chance; hard or structural failures
        // would just repeat.
        if let Some(first_pass) = ctx.retry_only {
            if let Some(reason) = first_pass.reason(prover) {
                if !matches!(
                    reason,
                    FailureReason::FuelExhausted | FailureReason::Timeout
                ) {
                    return None;
                }
            }
        }
        // Obligation budget already spent: remaining provers are skipped,
        // not blamed — they were never tried.
        if budget.check().is_err() || budget.poll_deadline().is_err() {
            return None;
        }
        // Which pass this attempt belongs to, for the event stream.
        let pass: &'static str = if ctx.exclude.is_some() {
            "confirm"
        } else if ctx.retry_only.is_some() {
            "retry"
        } else {
            "first"
        };
        // Circuit breaker gate.
        let breakers_on = self.config.breaker_threshold > 0;
        let mut probing = false;
        if breakers_on {
            match self.breakers.gate(prover) {
                Gate::Pass => {}
                Gate::Probe => {
                    probing = true;
                    self.emit(Event::Breaker {
                        prover: prover.name(),
                        transition: "half-open",
                    });
                }
                Gate::Skip => {
                    diag.record(prover, FailureReason::CircuitOpen);
                    self.emit(Event::Breaker {
                        prover: prover.name(),
                        transition: "skipped",
                    });
                    return None;
                }
            }
        }
        // Slice the obligation budget for this attempt. First-pass slices
        // are fractional so one prover cannot drain a metered obligation;
        // escalated passes get everything left; half-open probes get a
        // deliberately small allowance.
        let remaining = budget.fuel_remaining();
        let slice_fuel = if probing {
            if remaining == INFINITE_FUEL {
                self.config.breaker_probe_fuel
            } else {
                remaining.min(self.config.breaker_probe_fuel)
            }
        } else if ctx.escalated
            || self.config.attempt_fuel_divisor <= 1
            || remaining == INFINITE_FUEL
        {
            remaining
        } else {
            (remaining / self.config.attempt_fuel_divisor).max(1)
        };
        let slice = budget.child(None, slice_fuel);
        // Chaos: decide this attempt's fate from the armed plan.
        let fault = self
            .config
            .fault_plan
            .as_deref()
            .and_then(|plan| plan.decide(prover.site()));
        if let Some(fault) = fault {
            self.emit(Event::ChaosInjected {
                site: prover.site().to_owned(),
                fault: fault.to_string(),
            });
        }
        let started = Instant::now();
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            match fault {
                Some(Fault::Panic) => panic!("chaos: injected panic in {prover}"),
                Some(Fault::Timeout) => return Err(Exhaustion::Timeout.into()),
                Some(Fault::Starvation) => return Err(Exhaustion::Fuel.into()),
                Some(Fault::SlowBurn) => {
                    // A prover that spins: burn the whole slice, no progress.
                    let r = slice.fuel_remaining();
                    if r != INFINITE_FUEL {
                        let _ = slice.charge(r);
                    }
                    return Err(Exhaustion::Fuel.into());
                }
                Some(Fault::WrongVerdict(lie)) => {
                    // Single-liar rule: only the plan's designated liar may
                    // fabricate; everyone else stays honest so the watchdog
                    // has an independent opinion to appeal to.
                    let lies = self
                        .config
                        .fault_plan
                        .as_deref()
                        .is_some_and(|plan| plan.claim_liar(prover.site()));
                    if lies {
                        self.emit(Event::ChaosLied {
                            prover: prover.name(),
                        });
                        return Ok(Some(match lie {
                            Lie::ClaimProved => Verdict::Proved {
                                prover,
                                bound: None,
                            },
                            Lie::ClaimRefuted => {
                                Verdict::CounterModel(Box::new(jahob_logic::Model {
                                    universe: 0,
                                    int_range: (0, 0),
                                    interp: FxHashMap::default(),
                                    old_interp: None,
                                }))
                            }
                        }));
                    }
                }
                // Disk faults target the persistent store's IO boundary,
                // IPC faults the supervisor's worker requests, and socket
                // faults the daemon's client connections — not in-process
                // prover attempts; a seeded roll landing one here is
                // impossible (`decide` never yields them) and a targeted
                // rule aiming one at a prover site is inert.
                Some(Fault::Disk(_)) | Some(Fault::Ipc(_)) | Some(Fault::Socket(_)) | None => {}
            }
            body(&slice, diag)
        }));
        let fuel_spent = if slice_fuel == INFINITE_FUEL {
            0
        } else {
            let spent = slice_fuel - slice.fuel_remaining();
            // Child fuel is a capped copy, not a reservation: drain the
            // obligation by what the attempt actually burned.
            let _ = budget.charge(spent);
            spent
        };
        let (verdict, failure) = match outcome {
            Ok(Ok(verdict)) => (verdict, None),
            Ok(Err(why)) => {
                let reason = FailureReason::from(why);
                diag.record(prover, reason);
                (None, Some(reason))
            }
            Err(_) => {
                diag.record(prover, FailureReason::Panicked);
                (None, Some(FailureReason::Panicked))
            }
        };
        // One Attempt event per governed attempt. The `failure.*` counters
        // derive from it (see `Event::stat_increments`); fuel is content-
        // determined, wall-time is redacted from deterministic output.
        let outcome_name = match (&verdict, failure) {
            (_, Some(reason)) => reason.to_string(),
            (Some(Verdict::Proved { .. }), None) => "proved".to_owned(),
            (Some(Verdict::CounterModel(_)), None) => "refuted".to_owned(),
            (Some(Verdict::Unknown(_)), None) | (None, None) => "no-decision".to_owned(),
        };
        self.emit(Event::Attempt {
            prover: prover.name(),
            pass,
            outcome: outcome_name,
            fuel: fuel_spent,
            micros: started.elapsed().as_micros() as u64,
        });
        if breakers_on {
            if let Some(transition) = self
                .breakers
                .observe(prover, probing, failure, &self.config)
            {
                self.emit(Event::Breaker {
                    prover: prover.name(),
                    transition,
                });
            }
        }
        verdict
    }

    /// The body `guard` runs for a remotable portfolio member: try the
    /// process backend first (when one is attached and eligible), fall
    /// back to the shared in-process implementation.
    fn attempt_body(
        &self,
        prover: ProverId,
        variants: &[(Form, FxHashMap<Symbol, Sort>)],
        slice: &Budget,
        diag: &mut Diagnosis,
    ) -> Result<Option<Verdict>, AttemptError> {
        if let Some(outcome) = self.remote_attempt(prover, variants, slice, diag) {
            return outcome;
        }
        crate::worker::portfolio_attempt(
            prover,
            variants,
            self.config.fol_iterations,
            slice,
            diag,
            &self.stats,
        )
        .map_err(AttemptError::from)
    }

    /// Attempt one prover out of process. Returns `None` when the attempt
    /// should (or must) run in-process instead: no backend attached, a
    /// non-remotable prover, a seeded chaos plan armed, a quarantined
    /// lane, or a worker crash after the crash has been diagnosed —
    /// graceful degradation, never a changed verdict.
    fn remote_attempt(
        &self,
        prover: ProverId,
        variants: &[(Form, FxHashMap<Symbol, Sort>)],
        slice: &Budget,
        diag: &mut Diagnosis,
    ) -> Option<Result<Option<Verdict>, AttemptError>> {
        use crate::worker::{DecodedReply, ReplyOutcome};
        use jahob_util::supervisor::Outcome;
        let backend = self.supervisor.as_deref()?;
        if !crate::worker::remotable(prover) {
            return None;
        }
        let plan = self.config.fault_plan.as_deref();
        // Seeded plans stand the process backend down entirely: their
        // faults fire at thread-local boundaries *inside* the provers,
        // which a child process cannot see, so running remotely would
        // silently change which faults a run replays. (The goal cache
        // stands down under seeded plans for the analogous reason.)
        if plan.is_some_and(FaultPlan::is_seeded) {
            return None;
        }
        // Targeted IPC faults are decided here, at the named supervisor
        // boundary, and shipped to the worker as cooperative-misbehavior
        // flags; the observable effect on the parent is the real thing.
        let ipc_fault = plan.and_then(|p| p.decide_ipc(prover.supervisor_site()));
        if let Some(kind) = ipc_fault {
            self.emit(Event::ChaosInjected {
                site: prover.supervisor_site().to_owned(),
                fault: Fault::Ipc(kind).to_string(),
            });
        }
        let deadline = backend.deadline_for(slice);
        let request = crate::worker::Request {
            prover,
            chaos: ipc_fault.map(crate::worker::ipc_fault_flag).unwrap_or(0),
            fuel: slice.fuel_remaining(),
            deadline_ms: deadline.as_millis() as u64,
            fol_iterations: self.config.fol_iterations as u64,
            variants: variants.to_vec(),
        };
        // The hard SIGKILL deadline trails the worker's cooperative one,
        // so a healthy-but-slow worker reports its own Timeout; the kill
        // is reserved for the genuinely wedged.
        let hard = deadline + Duration::from_millis(150);
        match backend
            .supervisor()
            .request(prover.name(), &request.encode(), hard)
        {
            Outcome::Reply(payload) => match DecodedReply::decode(&payload) {
                Ok(reply) => {
                    for (name, delta) in &reply.stats {
                        self.stats.add(name, *delta);
                    }
                    for (p, reason) in &reply.diag {
                        diag.record(*p, *reason);
                    }
                    let _ = slice.charge(reply.fuel_spent);
                    Some(match reply.outcome {
                        ReplyOutcome::NoDecision => Ok(None),
                        ReplyOutcome::Proved { prover, bound } => {
                            Ok(Some(Verdict::Proved { prover, bound }))
                        }
                        ReplyOutcome::Exhausted(why) => Err(AttemptError::Budget(why)),
                        // Re-raise the worker's caught panic so the guard's
                        // catch_unwind takes exactly the in-process path
                        // (diagnosis, breaker, Attempt event). resume_unwind
                        // skips the panic hook: the worker's stderr already
                        // carries the original message.
                        ReplyOutcome::Panicked => {
                            std::panic::resume_unwind(Box::new("prover panicked in worker process"))
                        }
                    })
                }
                Err(_) => {
                    // CRC-clean but undecodable: a protocol-version bug,
                    // not line noise. Degrade to the in-process path.
                    self.emit(Event::SupervisorFallback {
                        lane: prover.name(),
                    });
                    None
                }
            },
            Outcome::TimedOut => {
                self.emit(Event::SupervisorKill {
                    lane: prover.name(),
                    reason: "deadline",
                });
                Some(Err(AttemptError::Budget(Exhaustion::Timeout)))
            }
            Outcome::Crashed { oom: true, .. } => {
                self.emit(Event::SupervisorCrash {
                    lane: prover.name(),
                    oom: true,
                });
                Some(Err(AttemptError::Resource))
            }
            Outcome::Crashed { oom: false, .. } => {
                self.emit(Event::SupervisorCrash {
                    lane: prover.name(),
                    oom: false,
                });
                self.emit(Event::SupervisorFallback {
                    lane: prover.name(),
                });
                None
            }
            // Quarantined lane: the quarantine event fired when the lane
            // was condemned; every later attempt silently degrades.
            Outcome::Unavailable => None,
            // Cancellation only exists on the racing path, which issues
            // its requests through `request_cancellable` directly; the
            // plain `request` used here never cancels. Degrade in-process
            // if it ever surfaces.
            Outcome::Cancelled => None,
        }
    }

    /// Try to race one piece's first-pass portfolio attempts. Returns the
    /// per-racer results (indexed canonically, [`RACERS`] order) when the
    /// race ran; `None` means "not eligible — dispatch sequentially".
    ///
    /// Eligibility is deliberately narrow, because the headline invariant
    /// is bit-for-bit determinism against the sequential walk:
    ///
    /// * first pass only: escalated retries and watchdog confirmations
    ///   have budget- and exclusion-coupled semantics;
    /// * unmetered obligations only (no deadline, infinite fuel) — metered
    ///   slices are order-dependent (each attempt's allowance depends on
    ///   what earlier attempts burned) and racing would change them;
    /// * no chaos plan armed: fault decisions consume per-site counters
    ///   and thread-local obligation scopes on the dispatch thread, which
    ///   racer threads cannot see;
    /// * every racer's breaker closed (a mutation-free peek): open or
    ///   half-open breakers skip and probe provers in ways only the
    ///   sequential gate calls may decide.
    fn race_portfolio(
        &self,
        piece: &Form,
        variants: &[(Form, FxHashMap<Symbol, Sort>)],
        budget: &Budget,
        ctx: &AttemptCtx<'_>,
    ) -> Option<Vec<RacerRun>> {
        if !self.config.racing
            || ctx.escalated
            || ctx.retry_only.is_some()
            || ctx.exclude.is_some()
            || self.config.fault_plan.is_some()
            || chaos::armed()
            || budget.time_remaining().is_some()
            || budget.fuel_remaining() != INFINITE_FUEL
            || budget.exhausted().is_some()
        {
            return None;
        }
        if self.config.breaker_threshold > 0
            && !RACERS.iter().all(|&p| self.breakers.peek_closed(p))
        {
            return None;
        }
        let backend = self.supervisor.as_deref();
        // One encoded request per racer, built once on this thread. The
        // codec is content-determined, so in-process racers decode the
        // exact goal a worker child would see (the supervision suite pins
        // backends verdict- and stream-identical over this codec).
        let deadline_ms = backend
            .map(|b| b.deadline_for(budget).as_millis() as u64)
            .unwrap_or(0);
        let requests: Vec<Vec<u8>> = RACERS
            .iter()
            .map(|&prover| {
                crate::worker::Request {
                    prover,
                    chaos: 0,
                    fuel: budget.fuel_remaining(),
                    deadline_ms,
                    fol_iterations: self.config.fol_iterations as u64,
                    variants: variants.to_vec(),
                }
                .encode()
            })
            .collect();
        let budgets: Vec<Budget> = RACERS.iter().map(|_| Budget::unlimited()).collect();
        // Spurious-cancellation chaos: decided *before* the fan-out from
        // (seed, goal fingerprint, racer index) — deterministic across
        // worker counts and wall-clock, sweepable over seeds. A cancelled
        // racer the commit walk needs is re-run inline, so this fault can
        // cost time but never a verdict.
        if let Some(seed) = self.config.race_cancel_seed {
            let normal = goal_cache::normalize(piece);
            let fp = goal_cache::fingerprint(&normal, &variants[0].1, self.config.cache_digest());
            let key = goal_cache::obligation_key(fp);
            for (i, b) in budgets.iter().enumerate() {
                if chaos::splitmix64(seed ^ key ^ (0x7ace_0000 + i as u64)) % 3 == 0 {
                    b.revoke();
                }
            }
        }
        self.emit_raw(Event::RaceStart {
            provers: RACERS.len() as u64,
        });
        // Adaptive ordering chooses who *starts* first; commit order stays
        // canonical regardless, so warm stats can never change output.
        let order: Vec<usize> = match &self.adaptive {
            Some(adaptive) => {
                adaptive.order(crate::adaptive::goal_class(piece, &variants[0].1), &RACERS)
            }
            None => (0..RACERS.len()).collect(),
        };
        let decided_floor = AtomicUsize::new(usize::MAX);
        let results = pool::run(RACERS.len(), order, |_cx, i| {
            let run = race_one(
                RACERS[i],
                &requests[i],
                backend,
                &budgets[i],
                i,
                &decided_floor,
            );
            if matches!(run.outcome, RacerOutcome::Proved { .. }) {
                // The canonically-least decision wins. Only racers at
                // strictly greater canonical indices are revoked — the
                // commit walk can never reach past the floor, so every
                // replayed result is an honest run-to-completion one.
                let prev = decided_floor.fetch_min(i, Ordering::SeqCst);
                let floor = prev.min(i);
                for (j, b) in budgets.iter().enumerate() {
                    if j > floor {
                        b.revoke();
                    }
                }
            }
            (i, run)
        });
        let mut slots: Vec<Option<RacerRun>> = RACERS.iter().map(|_| None).collect();
        // A racer task panicking outside the attempt's own catch_unwind
        // would be a harness bug; degrade that slot to an inline re-run
        // rather than guessing an outcome.
        for (i, run) in results.into_iter().flatten() {
            slots[i] = Some(run);
        }
        let runs: Vec<RacerRun> = slots
            .into_iter()
            .map(|r| r.unwrap_or_else(RacerRun::cancelled_before_start))
            .collect();
        let floor = decided_floor.load(Ordering::Relaxed);
        if floor != usize::MAX {
            self.emit_raw(Event::RaceWin {
                prover: RACERS[floor].name(),
            });
        }
        for (i, run) in runs.iter().enumerate() {
            if run.cancelled {
                self.emit_raw(Event::RaceCancelled {
                    prover: RACERS[i].name(),
                });
            }
        }
        // Feed the adaptive store: wins, attempts, and wall-clock cost per
        // racer for this goal class. Cancelled racers carry no signal.
        if let Some(adaptive) = &self.adaptive {
            let class = crate::adaptive::goal_class(piece, &variants[0].1);
            for (i, run) in runs.iter().enumerate() {
                if run.cancelled {
                    continue;
                }
                adaptive.record(
                    class,
                    RACERS[i],
                    matches!(run.outcome, RacerOutcome::Proved { .. }),
                    run.micros,
                );
            }
        }
        Some(runs)
    }

    /// The guard body on the racing path: replay one racer's recorded
    /// result exactly as the sequential attempt would have produced it —
    /// deferred supervisor events, stat deltas, diagnosis entries, then
    /// the outcome itself (re-raising recorded panics so the guard's
    /// `catch_unwind` takes its usual path). Cancelled racers re-run the
    /// real attempt inline.
    fn commit_racer(
        &self,
        run: &RacerRun,
        prover: ProverId,
        variants: &[(Form, FxHashMap<Symbol, Sort>)],
        slice: &Budget,
        diag: &mut Diagnosis,
    ) -> Result<Option<Verdict>, AttemptError> {
        if run.cancelled {
            self.emit_raw(Event::RaceRerun {
                prover: prover.name(),
            });
            return self.attempt_body(prover, variants, slice, diag);
        }
        for event in &run.deferred {
            self.emit(event.clone());
        }
        for (name, delta) in &run.stats {
            self.stats.add(name, *delta);
        }
        for (p, reason) in &run.diag {
            diag.record(*p, *reason);
        }
        match &run.outcome {
            RacerOutcome::Proved { prover, bound } => Ok(Some(Verdict::Proved {
                prover: *prover,
                bound: *bound,
            })),
            RacerOutcome::NoDecision => Ok(None),
            RacerOutcome::Failed(e) => Err(*e),
            RacerOutcome::Panicked(msg) => std::panic::resume_unwind(Box::new(msg.clone())),
        }
    }

    fn prove_piece_inner(&self, piece: &Form, budget: &Budget, ctx: &AttemptCtx<'_>) -> Verdict {
        let mut diag = Diagnosis::default();
        if simplify(piece) == Form::tt() {
            self.stats.bump("proved.simplifier");
            return Verdict::Proved {
                prover: ProverId::Simplifier,
                bound: None,
            };
        }
        // Candidate goals (each with its inferred signature): the abstract
        // piece, then the vardef-unfolded variant (ites lifted and
        // re-elaborated since unfolding exposes new structure).
        let (_, piece_sig) = self.elaborate(piece);
        let mut variants = vec![(piece.clone(), piece_sig)];
        if self.config.unfold && !self.defs.is_empty() {
            let raw = lift_ite(&unfold_defs(piece, &self.defs));
            let (elaborated, sig) = self.elaborate(&raw);
            let unfolded = simplify(&elaborated);
            if unfolded != *piece {
                if unfolded == Form::tt() {
                    self.stats.bump("proved.simplifier");
                    return Verdict::Proved {
                        prover: ProverId::Simplifier,
                        bound: None,
                    };
                }
                variants.push((unfolded, sig));
            }
        }

        // Speculative racing: when eligible, every remotable prover's
        // attempt runs concurrently *now*; the walk below then commits
        // the recorded results through the same guards, in the same
        // canonical order, as the sequential path — so verdicts, events,
        // diagnoses, and breaker transitions are bit-for-bit identical,
        // and losers past the winner are discarded wholesale.
        let race = self.race_portfolio(piece, &variants, budget, ctx);

        // Cheap, fragment-specific provers first (their bodies live in
        // [`crate::worker::portfolio_attempt`] so the in-process path and
        // the worker process run the same code; hypothesis filtering moved
        // with them). Each remotable member routes through the process
        // backend when one is attached.
        for (racer, prover) in [ProverId::Hol, ProverId::Lia, ProverId::Bapa, ProverId::Smt]
            .into_iter()
            .enumerate()
        {
            let decided = self.guard(prover, budget, &mut diag, ctx, |slice, diag| match &race {
                Some(runs) => self.commit_racer(&runs[racer], prover, &variants, slice, diag),
                None => self.attempt_body(prover, &variants, slice, diag),
            });
            if let Some(v) = decided {
                return v;
            }
        }
        // Counter-model search before the expensive provers: a refutation
        // settles the obligation for good.
        if self.config.bmc_bound > 0 {
            let refuted = self.guard(ProverId::Bmc, budget, &mut diag, ctx, |slice, diag| {
                for (goal, sig) in variants.iter().rev() {
                    self.stats.bump("tried.bmc-refute");
                    for universe in 1..=self.config.bmc_bound {
                        match jahob_models::refute_budgeted(goal, sig, universe, slice) {
                            Ok(Some(model)) => {
                                self.stats.bump("refuted.bmc");
                                return Ok(Some(Verdict::CounterModel(Box::new(model))));
                            }
                            Ok(None) => {}
                            Err(jahob_models::ModelsFailure::Fragment(_)) => {
                                diag.record(ProverId::Bmc, FailureReason::Unsupported);
                                break;
                            }
                            Err(jahob_models::ModelsFailure::Exhausted(why)) => {
                                return Err(why.into())
                            }
                        }
                    }
                }
                Ok(None)
            });
            if let Some(v) = refuted {
                return v;
            }
        }
        let fol = self.guard(
            ProverId::Fol,
            budget,
            &mut diag,
            ctx,
            |slice, diag| match &race {
                // Fol is racer 4; it raced speculatively past the BMC-refute
                // pass above, which is sound: if BMC had refuted, the walk
                // returned there and this result was simply discarded.
                Some(runs) => self.commit_racer(&runs[4], ProverId::Fol, &variants, slice, diag),
                None => self.attempt_body(ProverId::Fol, &variants, slice, diag),
            },
        );
        if let Some(v) = fol {
            return v;
        }
        if self.config.bmc_bound > 0 && self.config.bmc_as_validity {
            let bmc = self.guard(ProverId::Bmc, budget, &mut diag, ctx, |slice, diag| {
                for (goal, sig) in variants.iter().rev() {
                    self.stats.bump("tried.bmc-validity");
                    // Opaque set-valued applications (`List.content a`) are
                    // abstracted into fresh set variables so client-level
                    // goals ground; the abstraction is sound for validity,
                    // and any counter-model of a weakened goal (abstracted
                    // or with hypotheses filtered) is NOT reported as a
                    // refutation.
                    let (abstracted, abs_sig, was_abstracted) = abstract_set_apps(goal, sig);
                    let filtered_candidate = crate::worker::filtered(&abstracted, &mut |h| {
                        let ok = jahob_models::in_fragment(h, &abs_sig, 1);
                        if !ok {
                            self.recorder.record_with(|| {
                                let t = h.to_string();
                                Event::Note {
                                    text: format!(
                                        "bmc drops hyp: {}",
                                        t.chars().take(120).collect::<String>()
                                    ),
                                }
                            });
                        }
                        ok
                    });
                    let weakened = was_abstracted || filtered_candidate.is_some();
                    let candidate = filtered_candidate.unwrap_or_else(|| abstracted.clone());
                    let bmc_result = jahob_models::bmc_valid_with_bound_budgeted(
                        &candidate,
                        &abs_sig,
                        self.config.bmc_bound,
                        slice,
                    );
                    match bmc_result {
                        Ok(BmcVerdict::ValidUpTo(bound)) => {
                            self.stats.bump("proved.bmc");
                            return Ok(Some(Verdict::Proved {
                                prover: ProverId::Bmc,
                                bound: Some(bound),
                            }));
                        }
                        Ok(BmcVerdict::CounterModel(model)) => {
                            if !weakened {
                                self.stats.bump("refuted.bmc");
                                return Ok(Some(Verdict::CounterModel(model)));
                            }
                            // Counter-model of a weakened goal: inconclusive.
                            diag.record(ProverId::Bmc, FailureReason::GaveUp);
                        }
                        Err(jahob_models::ModelsFailure::Fragment(_)) => {
                            diag.record(ProverId::Bmc, FailureReason::Unsupported)
                        }
                        Err(jahob_models::ModelsFailure::Exhausted(why)) => return Err(why.into()),
                    }
                }
                Ok(None)
            });
            if let Some(v) = bmc {
                return v;
            }
        }
        self.stats.bump("unknown");
        diag.obligation_spent = budget.exhausted().map(FailureReason::from);
        Verdict::Unknown(diag)
    }
}

// ---- speculative racing --------------------------------------------------

/// The racing portfolio: every remotable prover, in canonical dispatch
/// order. BMC is absent on purpose — both its passes (refute, bounded
/// validity) run inline at their fixed positions during the commit walk,
/// so a race never changes *what* runs, only *when*.
const RACERS: [ProverId; 5] = [
    ProverId::Hol,
    ProverId::Lia,
    ProverId::Bapa,
    ProverId::Smt,
    ProverId::Fol,
];

/// Everything one speculative racer ships back from its pool task. All
/// fields are `Send` by construction: verdict payloads are reduced to
/// `(prover, bound)` — the racers never produce counter-models; the wire
/// protocol cannot even express one — diagnosis and stats are replayable
/// value lists, and deferred events are the canonical supervisor events
/// the sequential path would have emitted inside this attempt.
struct RacerRun {
    outcome: RacerOutcome,
    /// Per-prover failure reasons in the racer's own attempt order
    /// (replayed through [`Diagnosis::record`], which merges by prover,
    /// so one racer's internal order is already canonical).
    diag: Vec<(ProverId, FailureReason)>,
    stats: Vec<(String, u64)>,
    /// Canonical supervisor events (kill / crash / fallback) to replay at
    /// commit time, in emission order.
    deferred: Vec<Event>,
    /// The racer never produced a usable result: its budget was revoked
    /// before it started (spurious-cancellation chaos), the supervisor
    /// cancelled it mid-flight, or the attempt produced something that
    /// cannot cross threads. If the commit walk needs this slot it re-runs
    /// the attempt inline — slower, never different.
    cancelled: bool,
    /// Wall-clock this racer burned. Adaptive-ordering cost signal only;
    /// never reaches canonical output.
    micros: u64,
}

impl RacerRun {
    fn cancelled_before_start() -> RacerRun {
        RacerRun {
            outcome: RacerOutcome::NoDecision,
            diag: Vec::new(),
            stats: Vec::new(),
            deferred: Vec::new(),
            cancelled: true,
            micros: 0,
        }
    }
}

enum RacerOutcome {
    Proved {
        prover: ProverId,
        bound: Option<u32>,
    },
    NoDecision,
    Failed(AttemptError),
    /// The attempt panicked; the message is re-raised at commit time so
    /// the guard's `catch_unwind` takes exactly the sequential path.
    Panicked(String),
}

/// Run one racer to completion on the current thread. Mirrors the
/// sequential attempt path exactly — remote request first when a backend
/// is attached, in-process [`crate::worker::portfolio_attempt`] otherwise
/// or on fallback — but records canonical events instead of emitting them
/// and returns `Send` data only. A free function on purpose: the
/// dispatcher itself holds `Rc`-laden formulas and must not cross into
/// the racer threads.
fn race_one(
    prover: ProverId,
    request_bytes: &[u8],
    backend: Option<&crate::worker::ProcessBackend>,
    budget: &Budget,
    my_index: usize,
    decided_floor: &AtomicUsize,
) -> RacerRun {
    use crate::worker::{DecodedReply, ReplyOutcome};
    use jahob_util::supervisor::Outcome;
    let started = Instant::now();
    let mut run = RacerRun {
        outcome: RacerOutcome::NoDecision,
        diag: Vec::new(),
        stats: Vec::new(),
        deferred: Vec::new(),
        cancelled: false,
        micros: 0,
    };
    // Spurious-cancellation chaos revoked this racer before it started.
    if budget.exhausted().is_some() {
        run.cancelled = true;
        return run;
    }
    let mut in_process = true;
    if let Some(backend) = backend {
        in_process = false;
        let deadline = backend.deadline_for(budget);
        // Same hard-deadline margin as the sequential remote path: the
        // SIGKILL trails the worker's cooperative deadline.
        let hard = deadline + Duration::from_millis(150);
        let cancelled =
            || decided_floor.load(Ordering::Relaxed) < my_index || budget.exhausted().is_some();
        match backend.supervisor().request_cancellable(
            prover.name(),
            request_bytes,
            hard,
            &cancelled,
        ) {
            Outcome::Reply(payload) => match DecodedReply::decode(&payload) {
                Ok(reply) => {
                    run.stats = reply.stats;
                    run.diag = reply.diag;
                    run.outcome = match reply.outcome {
                        ReplyOutcome::NoDecision => RacerOutcome::NoDecision,
                        ReplyOutcome::Proved { prover, bound } => {
                            RacerOutcome::Proved { prover, bound }
                        }
                        ReplyOutcome::Exhausted(why) => {
                            RacerOutcome::Failed(AttemptError::Budget(why))
                        }
                        ReplyOutcome::Panicked => {
                            RacerOutcome::Panicked("prover panicked in worker process".to_owned())
                        }
                    };
                }
                Err(_) => {
                    run.deferred.push(Event::SupervisorFallback {
                        lane: prover.name(),
                    });
                    in_process = true;
                }
            },
            Outcome::TimedOut => {
                run.deferred.push(Event::SupervisorKill {
                    lane: prover.name(),
                    reason: "deadline",
                });
                run.outcome = RacerOutcome::Failed(AttemptError::Budget(Exhaustion::Timeout));
            }
            Outcome::Crashed { oom: true, .. } => {
                run.deferred.push(Event::SupervisorCrash {
                    lane: prover.name(),
                    oom: true,
                });
                run.outcome = RacerOutcome::Failed(AttemptError::Resource);
            }
            Outcome::Crashed { oom: false, .. } => {
                run.deferred.push(Event::SupervisorCrash {
                    lane: prover.name(),
                    oom: false,
                });
                run.deferred.push(Event::SupervisorFallback {
                    lane: prover.name(),
                });
                in_process = true;
            }
            Outcome::Unavailable => in_process = true,
            Outcome::Cancelled => {
                // Mid-flight loss: this racer's canonical index is past
                // the decided floor, so the commit walk will never reach
                // it; flag it cancelled anyway so an unexpected reach
                // degrades to an inline re-run, never a guess.
                run.deferred.clear();
                run.cancelled = true;
                run.micros = started.elapsed().as_micros() as u64;
                return run;
            }
        }
    }
    if in_process {
        // Decode the request on this thread: `Rc`-laden formulas must not
        // cross threads, and symbols intern globally, so round-tripping
        // the same bytes a worker child would receive yields a
        // proof-equivalent goal.
        let Ok(request) = crate::worker::Request::decode(request_bytes) else {
            run.cancelled = true;
            return run;
        };
        let stats = Stats::new();
        let mut diag = Diagnosis::default();
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            crate::worker::portfolio_attempt(
                prover,
                &request.variants,
                request.fol_iterations as usize,
                budget,
                &mut diag,
                &stats,
            )
        }));
        run.stats = stats.snapshot();
        run.diag = diag.attempts;
        run.outcome = match outcome {
            Ok(Ok(Some(Verdict::Proved { prover, bound }))) => {
                RacerOutcome::Proved { prover, bound }
            }
            Ok(Ok(Some(_))) => {
                // A counter-model (`Rc`-laden, must not cross threads) or
                // an inline Unknown — neither of which the racing provers
                // actually produce. Have the commit walk re-run inline so
                // nothing is lost if that ever changes.
                run.cancelled = true;
                RacerOutcome::NoDecision
            }
            Ok(Ok(None)) => RacerOutcome::NoDecision,
            Ok(Err(why)) => RacerOutcome::Failed(AttemptError::Budget(why)),
            Err(panic) => RacerOutcome::Panicked(pool::panic_message(&*panic).to_owned()),
        };
    }
    run.micros = started.elapsed().as_micros() as u64;
    run
}

/// Replace every set-valued application (head symbol of sort
/// `_ => objset`) by a fresh set variable, consistently per distinct term,
/// and add the congruence facts the replacement would otherwise lose:
/// for same-head applications `f t₁ → S₁`, `f t₂ → S₂`, the (valid)
/// hypothesis `t₁ = t₂ → S₁ = S₂`. Sound for validity: the abstraction
/// forgets constraints and the added hypotheses are true in every model.
fn abstract_set_apps(
    goal: &Form,
    sig: &FxHashMap<Symbol, Sort>,
) -> (Form, FxHashMap<Symbol, Sort>, bool) {
    use std::rc::Rc;
    struct Cx<'a> {
        sig: &'a FxHashMap<Symbol, Sort>,
        out_sig: FxHashMap<Symbol, Sort>,
        map: FxHashMap<Form, Symbol>,
        changed: bool,
    }
    impl Cx<'_> {
        fn is_set_app(&self, form: &Form) -> bool {
            if let Form::App(head, _) = form {
                if let Form::Var(f) = head.as_ref() {
                    if let Some(Sort::Fun(_, ret)) = self.sig.get(f) {
                        return matches!(ret.as_ref(), Sort::Set(inner) if **inner == Sort::Obj);
                    }
                }
            }
            false
        }
        fn walk(&mut self, form: &Form) -> Form {
            if self.is_set_app(form) {
                let next_id = self.map.len();
                let name = *self
                    .map
                    .entry(form.clone())
                    .or_insert_with(|| Symbol::intern(&format!("$setapp{next_id}")));
                self.out_sig.insert(name, Sort::objset());
                self.changed = true;
                return Form::Var(name);
            }
            match form {
                Form::Var(_) | Form::IntLit(_) | Form::BoolLit(_) | Form::Null | Form::EmptySet => {
                    form.clone()
                }
                Form::Tree(es) => Form::Tree(es.iter().map(|e| self.walk(e)).collect()),
                Form::FiniteSet(es) => Form::FiniteSet(es.iter().map(|e| self.walk(e)).collect()),
                Form::And(ps) => Form::and(ps.iter().map(|p| self.walk(p)).collect()),
                Form::Or(ps) => Form::or(ps.iter().map(|p| self.walk(p)).collect()),
                Form::Unop(op, a) => Form::Unop(*op, Rc::new(self.walk(a))),
                Form::Old(a) => Form::Old(Rc::new(self.walk(a))),
                Form::Binop(op, a, b) => Form::binop(*op, self.walk(a), self.walk(b)),
                Form::Ite(c, t, e) => Form::Ite(
                    Rc::new(self.walk(c)),
                    Rc::new(self.walk(t)),
                    Rc::new(self.walk(e)),
                ),
                Form::App(h, args) => {
                    Form::app(self.walk(h), args.iter().map(|a| self.walk(a)).collect())
                }
                Form::Quant(k, bs, body) => Form::Quant(*k, bs.clone(), Rc::new(self.walk(body))),
                Form::Lambda(bs, body) => Form::Lambda(bs.clone(), Rc::new(self.walk(body))),
                Form::Compr(x, s, body) => Form::Compr(*x, s.clone(), Rc::new(self.walk(body))),
            }
        }
    }
    let mut cx = Cx {
        sig,
        out_sig: sig.clone(),
        map: FxHashMap::default(),
        changed: false,
    };
    let walked = cx.walk(goal);
    if !cx.changed {
        return (walked, cx.out_sig, false);
    }
    // Congruence hypotheses per head symbol.
    let entries: Vec<(Form, Symbol)> = cx.map.iter().map(|(k, v)| (k.clone(), *v)).collect();
    let mut hyps: Vec<Form> = Vec::new();
    for (i, (t1, s1)) in entries.iter().enumerate() {
        for (t2, s2) in entries.iter().skip(i + 1) {
            let (Form::App(h1, a1), Form::App(h2, a2)) = (t1, t2) else {
                continue;
            };
            if h1 != h2 || a1.len() != a2.len() {
                continue;
            }
            let args_eq = Form::and(
                a1.iter()
                    .zip(a2.iter())
                    .map(|(x, y)| Form::eq(cx.walk(x), cx.walk(y)))
                    .collect(),
            );
            hyps.push(Form::implies(
                args_eq,
                Form::eq(Form::Var(*s1), Form::Var(*s2)),
            ));
        }
    }
    let full = hyps
        .into_iter()
        .rev()
        .fold(walked, |acc, h| Form::implies(h, acc));
    (full, cx.out_sig, true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use jahob_logic::form;

    fn dispatcher() -> Dispatcher {
        let mut sig: FxHashMap<Symbol, Sort> = FxHashMap::default();
        for (n, s) in [
            ("S", Sort::objset()),
            ("T", Sort::objset()),
            ("x", Sort::Obj),
            ("y", Sort::Obj),
            ("i", Sort::Int),
            ("j", Sort::Int),
            ("next", Sort::field(Sort::Obj)),
        ] {
            sig.insert(Symbol::intern(n), s);
        }
        sig.insert(Symbol::intern("Object.alloc"), Sort::objset());
        Dispatcher::new(sig, FxHashMap::default())
    }

    fn proved_by(d: &Dispatcher, src: &str) -> Option<ProverId> {
        match d.prove(&form(src)) {
            Verdict::Proved { prover, .. } => Some(prover),
            _ => None,
        }
    }

    #[test]
    fn routing_matches_fragments() {
        let d = dispatcher();
        assert_eq!(proved_by(&d, "x = x"), Some(ProverId::Simplifier));
        assert_eq!(proved_by(&d, "i < j --> i + 1 <= j"), Some(ProverId::Lia));
        assert_eq!(proved_by(&d, "S Int T <= S"), Some(ProverId::Bapa));
        assert_eq!(
            proved_by(&d, "x = y --> next x = next y"),
            Some(ProverId::Smt)
        );
        assert_eq!(
            proved_by(
                &d,
                "rtrancl_pt (% a b. next a = b) x y & \
                 rtrancl_pt (% a b. next a = b) y x2 \
                 --> rtrancl_pt (% a b. next a = b) x x2"
            ),
            Some(ProverId::Fol)
        );
    }

    #[test]
    fn counter_models_returned() {
        let d = dispatcher();
        match d.prove(&form("x : S --> x : T")) {
            Verdict::CounterModel(m) => {
                // The model genuinely refutes the goal.
                assert_eq!(m.eval_bool(&form("x : S --> x : T")), Ok(false));
            }
            other => panic!("expected counter-model, got {other:?}"),
        }
    }

    #[test]
    fn decomposition_routes_conjuncts_separately() {
        let d = dispatcher();
        // One conjunct is LIA, the other BAPA: only decomposition lets two
        // different provers share the goal.
        let v = d.prove(&form("(i < j --> i + 1 <= j) & S Int T <= S"));
        assert!(v.is_proved(), "{v:?}");
        assert!(d.stats.get("proved.presburger") >= 1);
        assert!(d.stats.get("proved.bapa") >= 1);
    }

    #[test]
    fn unknown_for_hard_goals() {
        let mut d = dispatcher();
        d.config.bmc_as_validity = false;
        d.config.bmc_bound = 2;
        // Satisfiable but not valid, and no small counter-model within
        // bound 2? — pick something refutable only at size ≥ 3 to land in
        // Unknown: "at most two distinct non-null objects exist".
        let v = d.prove(&form(
            "ALL a b c. a ~= null & b ~= null & c ~= null --> a = b | b = c | a = c",
        ));
        assert!(matches!(v, Verdict::Unknown(_)), "{v:?}");
    }

    #[test]
    fn injected_panic_is_isolated_and_diagnosed() {
        let mut d = dispatcher();
        // Make the one prover that can prove this goal panic instead.
        d.config.fault_plan = Some(Arc::new(FaultPlan::quiet().inject(
            ProverId::Bapa.site(),
            0..u64::MAX,
            Fault::Panic,
        )));
        d.config.bmc_bound = 0; // keep the model finder out of the way
        d.config.fol_iterations = 50;
        // Cardinality reasoning is BAPA-only: no other prover can pick up
        // the slack, so the verdict must be a diagnosed Unknown.
        let v = d.prove(&form("card (S Un T) <= card S + card T"));
        match v {
            Verdict::Unknown(diag) => {
                assert!(
                    diag.attempts
                        .contains(&(ProverId::Bapa, FailureReason::Panicked)),
                    "{diag}"
                );
            }
            other => panic!("expected diagnosed unknown, got {other:?}"),
        }
        assert_eq!(d.stats.get("failure.bapa.panicked"), 1);
        // The panic poisoned nothing: the same dispatcher still proves
        // other obligations afterwards.
        let v2 = d.prove(&form("i < j --> i + 1 <= j"));
        assert!(v2.is_proved(), "{v2:?}");
    }

    #[test]
    fn breaker_opens_after_streak_and_recovers_via_probe() {
        let mut d = dispatcher();
        // BAPA panics on its first three attempts, then behaves.
        d.config.fault_plan = Some(Arc::new(FaultPlan::quiet().inject(
            ProverId::Bapa.site(),
            0..3,
            Fault::Panic,
        )));
        d.config.breaker_threshold = 3;
        d.config.breaker_cooldown = 2;
        d.config.bmc_bound = 0;
        d.config.fol_iterations = 10;
        d.config.escalating_retry = false;
        let goal = form("card (S Un T) <= card S + card T");
        // Three panics open the breaker …
        for _ in 0..3 {
            assert!(!d.prove(&goal).is_proved());
        }
        assert_eq!(d.stats.get("breaker.bapa.open"), 1);
        // … the cooldown skips BAPA (diagnosed as circuit-open) …
        for _ in 0..2 {
            match d.prove(&goal) {
                Verdict::Unknown(diag) => assert_eq!(
                    diag.reason(ProverId::Bapa),
                    Some(FailureReason::CircuitOpen),
                    "{diag}"
                ),
                other => panic!("expected unknown during cooldown, got {other:?}"),
            }
        }
        assert_eq!(d.stats.get("breaker.bapa.skipped"), 2);
        // … and the half-open probe succeeds (fault range is spent), so the
        // breaker closes and BAPA proves the goal again.
        let v = d.prove(&goal);
        assert!(v.is_proved(), "{v:?}");
        assert_eq!(d.stats.get("breaker.bapa.half-open"), 1);
        assert_eq!(d.stats.get("breaker.bapa.close"), 1);
    }

    #[test]
    fn half_open_admits_exactly_one_probe_across_racing_workers() {
        // Regression: half-open used to answer `Probe` to every caller, so
        // N workers racing past an expired cooldown all probed a prover
        // that had just crash-looped. Half-open now means "probe in
        // flight": the cooldown drainer owns the one probe, everyone else
        // skips, and the tallies are deterministic at any interleaving.
        let bank = BreakerBank::default();
        let cell = &bank.cells[ProverId::Bapa.index()];
        cell.state.store(BREAKER_OPEN, Ordering::Relaxed);
        cell.cooldown.store(3, Ordering::Relaxed);
        let probes = AtomicU64::new(0);
        let skips = AtomicU64::new(0);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..4 {
                        match bank.gate(ProverId::Bapa) {
                            Gate::Probe => probes.fetch_add(1, Ordering::Relaxed),
                            Gate::Skip => skips.fetch_add(1, Ordering::Relaxed),
                            Gate::Pass => panic!("breaker closed without a probe verdict"),
                        };
                    }
                });
            }
        });
        assert_eq!(
            probes.load(Ordering::Relaxed),
            1,
            "exactly one racing worker may own the half-open probe"
        );
        assert_eq!(skips.load(Ordering::Relaxed), 31);

        // A failed probe reopens the breaker and the next drain hands out
        // exactly one fresh probe — again regardless of who races.
        let config = DispatchConfig {
            breaker_cooldown: 1,
            ..DispatchConfig::default()
        };
        assert_eq!(
            bank.observe(ProverId::Bapa, true, Some(FailureReason::Panicked), &config),
            Some("reopen")
        );
        assert!(matches!(bank.gate(ProverId::Bapa), Gate::Skip));
        assert!(matches!(bank.gate(ProverId::Bapa), Gate::Probe));
        assert!(matches!(bank.gate(ProverId::Bapa), Gate::Skip));

        // A well-behaved probe closes the breaker for everyone.
        assert_eq!(
            bank.observe(ProverId::Bapa, true, None, &config),
            Some("close")
        );
        assert!(matches!(bank.gate(ProverId::Bapa), Gate::Pass));
    }

    #[test]
    fn escalating_retry_recovers_from_starved_first_pass() {
        let mut d = dispatcher();
        // BAPA's first attempt reports spurious fuel exhaustion; the
        // escalated retry (same obligation, leftover budget) succeeds.
        d.config.fault_plan = Some(Arc::new(FaultPlan::quiet().inject(
            ProverId::Bapa.site(),
            0..1,
            Fault::Starvation,
        )));
        d.config.bmc_bound = 0;
        d.config.fol_iterations = 10;
        let v = d.prove(&form("card (S Un T) <= card S + card T"));
        assert!(v.is_proved(), "{v:?}");
        assert_eq!(d.stats.get("retry.escalated"), 1);
        assert_eq!(d.stats.get("retry.recovered"), 1);
    }

    #[test]
    fn watchdog_demotes_lying_proved_to_disagreement() {
        let mut d = dispatcher();
        // BAPA lies "proved" about a refutable goal; the confirmation pass
        // (portfolio minus BAPA) finds the counter-model.
        d.config.fault_plan = Some(Arc::new(FaultPlan::quiet().inject(
            ProverId::Bapa.site(),
            0..u64::MAX,
            Fault::WrongVerdict(Lie::ClaimProved),
        )));
        d.config.cross_check = true;
        let v = d.prove(&form("x : S --> x : T"));
        match v {
            Verdict::Unknown(diag) => {
                assert_eq!(
                    diag.reason(ProverId::Bapa),
                    Some(FailureReason::Disagreement {
                        claimed: VerdictKind::Proved,
                        witness: VerdictKind::Refuted,
                    }),
                    "{diag}"
                );
            }
            other => panic!("expected demoted unknown, got {other:?}"),
        }
        assert!(d.stats.get("watchdog.disagreement") >= 1);
    }

    #[test]
    fn watchdog_rejects_fabricated_counter_models() {
        let mut d = dispatcher();
        // BAPA fabricates a refutation of a valid goal; the reference
        // evaluator exposes the bogus model.
        d.config.fault_plan = Some(Arc::new(FaultPlan::quiet().inject(
            ProverId::Bapa.site(),
            0..u64::MAX,
            Fault::WrongVerdict(Lie::ClaimRefuted),
        )));
        d.config.cross_check = true;
        let v = d.prove(&form("S Int T <= S"));
        match v {
            Verdict::Unknown(diag) => {
                assert!(
                    diag.attempts.iter().any(|(_, r)| matches!(
                        r,
                        FailureReason::Disagreement {
                            claimed: VerdictKind::Refuted,
                            ..
                        }
                    )),
                    "{diag}"
                );
            }
            other => panic!("expected demoted unknown, got {other:?}"),
        }
    }

    #[test]
    fn watchdog_confirms_honest_verdicts() {
        let mut d = dispatcher();
        d.config.cross_check = true;
        // An honest Proved survives: BAPA proves it, and so does a second
        // independent prover (BMC validity at worst).
        assert!(d.prove(&form("S Int T <= S")).is_proved());
        // An honest refutation survives the evaluator re-check.
        assert!(matches!(
            d.prove(&form("x : S --> x : T")),
            Verdict::CounterModel(_)
        ));
        assert!(d.stats.get("watchdog.confirmed") >= 2);
        assert_eq!(d.stats.get("watchdog.disagreement"), 0);
    }

    #[test]
    fn exhausted_fuel_yields_diagnosed_unknown() {
        let mut d = dispatcher();
        d.config.obligation_fuel = 5;
        d.config.bmc_bound = 2;
        d.config.bmc_as_validity = false;
        // The hard goal from `unknown_for_hard_goals`: every prover would
        // churn on it, so the metered obligation fuel runs out mid-portfolio.
        let v = d.prove(&form(
            "ALL a b c. a ~= null & b ~= null & c ~= null --> a = b | b = c | a = c",
        ));
        match v {
            Verdict::Unknown(diag) => {
                assert!(
                    diag.attempts
                        .iter()
                        .any(|(_, r)| *r == FailureReason::FuelExhausted)
                        || diag.obligation_spent == Some(FailureReason::FuelExhausted),
                    "{diag}"
                );
            }
            other => panic!("expected diagnosed unknown, got {other:?}"),
        }
        // Graceful degradation: with the budget lifted the same dispatcher
        // still decides easy goals.
        d.config.obligation_fuel = jahob_util::budget::INFINITE_FUEL;
        assert!(d.prove(&form("i < j --> i + 1 <= j")).is_proved());
    }

    #[test]
    fn expired_deadline_skips_portfolio() {
        let mut d = dispatcher();
        d.config.obligation_timeout = Some(Duration::from_secs(0));
        let v = d.prove(&form("S Int T <= S"));
        match v {
            Verdict::Unknown(diag) => {
                assert_eq!(
                    diag.obligation_spent,
                    Some(FailureReason::Timeout),
                    "{diag}"
                );
            }
            other => panic!("expected diagnosed unknown, got {other:?}"),
        }
    }

    #[test]
    fn vardefs_unfold() {
        let mut defs = FxHashMap::default();
        defs.insert(Symbol::intern("mycontent"), form("{e. e : S | e : T}"));
        let d = Dispatcher::new(dispatcher().sig, defs);
        // Abstractly unprovable; after unfolding it is BAPA-valid.
        let v = d.prove(&form("x : S --> x : mycontent"));
        assert!(v.is_proved(), "{v:?}");
    }
}
