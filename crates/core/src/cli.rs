//! The shared command-line front door.
//!
//! The `jahob` binary and the `verify_file` example used to carry two
//! hand-rolled copies of the same flag loop; this module is the single
//! grammar both parse, the single place flags are layered over the
//! environment (everything resolves exactly once, inside
//! [`Config::builder`]), and the single exit-code ladder:
//!
//! * `0` — a completed run (whatever the verdicts);
//! * `1` — a pipeline error (parse/resolve) or a broken daemon
//!   conversation;
//! * `2` — unusable arguments, an unreadable input/output path, a
//!   refused connection, or a BUSY admission refusal — always with a
//!   diagnosed message, never a panic.
//!
//! Subcommands (first argument): `verify` (implicit when the first
//! argument is a path), `serve`, `submit`, `status`, `drain`. The
//! hidden `worker` mode is the supervisor's child half and is handled
//! by the binaries *before* this parser runs.

use crate::service::{self, Client, Service, SubmitOptions, SubmitOutcome};
use crate::verify::{Config, Isolation, ReportRender, RequestOptions, Verifier, VerifyReport};
use jahob_util::obs::JsonlSink;
use std::io::Write as _;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

/// How a report is rendered: the human-readable table, stable JSON, or
/// JSON with wall-clock fields. The one switch behind `--json` /
/// `--json-timing`, carried verbatim over the daemon's wire protocol so
/// `jahob submit` output is byte-identical to `jahob verify`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum OutputMode {
    #[default]
    Human,
    Json,
    JsonTiming,
}

impl OutputMode {
    /// The [`ReportRender`] options for the JSON modes (`None` = human).
    pub fn render(self) -> Option<ReportRender> {
        match self {
            OutputMode::Human => None,
            OutputMode::Json => Some(ReportRender::STABLE),
            OutputMode::JsonTiming => Some(ReportRender::TIMING),
        }
    }
}

/// Flags shared by every subcommand.
#[derive(Clone, Debug, Default)]
pub struct CommonOpts {
    pub output: OutputMode,
    pub isolation: Option<Isolation>,
    pub racing: bool,
    pub adaptive: bool,
    pub slicing: bool,
    /// `--socket PATH`; unset defers to `JAHOB_SOCKET` in the builder.
    pub socket: Option<PathBuf>,
    /// `--deadline-ms N`: per-obligation wall-clock ceiling for this
    /// request (one-shot and daemon submissions alike).
    pub deadline: Option<Duration>,
}

/// What the invocation asks for.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Command {
    /// One-shot verification of a file (the implicit default).
    Verify { path: String },
    /// Run the persistent verification daemon.
    Serve,
    /// Submit a file to a running daemon.
    Submit { path: String },
    /// Probe a running daemon's queue state.
    Status,
    /// Ask a running daemon to finish admitted work and exit.
    Drain,
}

/// A parsed command line.
#[derive(Clone, Debug)]
pub struct Invocation {
    pub command: Command,
    pub opts: CommonOpts,
}

/// Parse `args` (program name already stripped). `Err` carries the
/// diagnosis for [`usage`].
pub fn parse(args: Vec<String>) -> Result<Invocation, String> {
    let mut iter = args.into_iter().peekable();
    // The subcommand is the first argument, git-style; anything else —
    // a flag or a path — falls through to the implicit `verify`.
    let explicit = match iter.peek().map(String::as_str) {
        Some("verify") => Some(None),
        Some("serve") => Some(Some(Command::Serve)),
        Some("submit") => Some(None),
        Some("status") => Some(Some(Command::Status)),
        Some("drain") => Some(Some(Command::Drain)),
        _ => None,
    };
    let word = explicit.is_some().then(|| iter.next().unwrap());
    let mut command = explicit.flatten();

    let mut opts = CommonOpts::default();
    let mut path = None;
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--json" => opts.output = OutputMode::Json,
            "--json-timing" => opts.output = OutputMode::JsonTiming,
            "--racing" => opts.racing = true,
            "--adaptive" => opts.adaptive = true,
            "--slicing" => opts.slicing = true,
            "--isolation" => match iter.next() {
                Some(mode) => match parse_isolation(&mode) {
                    Some(iso) => opts.isolation = Some(iso),
                    None => return Err(format!("unknown isolation mode `{mode}`")),
                },
                None => return Err("--isolation needs a mode (process|in-process)".into()),
            },
            "--socket" => match iter.next() {
                Some(p) => opts.socket = Some(PathBuf::from(p)),
                None => return Err("--socket needs a path".into()),
            },
            "--deadline-ms" => match iter.next().as_deref().map(str::parse::<u64>) {
                Some(Ok(ms)) if ms > 0 => opts.deadline = Some(Duration::from_millis(ms)),
                _ => return Err("--deadline-ms needs a positive integer".into()),
            },
            other => {
                if let Some(mode) = other.strip_prefix("--isolation=") {
                    match parse_isolation(mode) {
                        Some(iso) => opts.isolation = Some(iso),
                        None => return Err(format!("unknown isolation mode `{mode}`")),
                    }
                } else if let Some(p) = other.strip_prefix("--socket=") {
                    opts.socket = Some(PathBuf::from(p));
                } else if other.starts_with("--") {
                    return Err(format!("unknown flag `{other}`"));
                } else if path.is_none() {
                    path = Some(other.to_owned());
                } else {
                    return Err(format!("unexpected argument `{other}`"));
                }
            }
        }
    }

    if command.is_none() {
        // `verify`/`submit` take the remaining positional as the file.
        let Some(path) = path.take() else {
            return Err("no input file".into());
        };
        command = Some(match word.as_deref() {
            Some("submit") => Command::Submit { path },
            _ => Command::Verify { path },
        });
    } else if let Some(stray) = path {
        return Err(format!("unexpected argument `{stray}`"));
    }
    Ok(Invocation {
        command: command.expect("either branch sets it"),
        opts,
    })
}

fn parse_isolation(mode: &str) -> Option<Isolation> {
    match mode {
        "process" => Some(Isolation::Process),
        "in-process" => Some(Isolation::InProcess),
        _ => None,
    }
}

/// Diagnose a bad invocation onto stderr and return the ladder's `2`.
/// `with_service` includes the daemon subcommands in the usage line
/// (the `verify_file` example only verifies).
pub fn usage(program: &str, why: &str, with_service: bool) -> ExitCode {
    eprintln!("{program}: {why}");
    if with_service {
        eprintln!(
            "usage: {program} [verify] [--json|--json-timing] \
             [--isolation process|in-process] [--racing] [--adaptive] \
             [--slicing] [--deadline-ms N] <file.javax>\n       \
             {program} serve  [--socket <path>] [--slicing]\n       \
             {program} submit [--socket <path>] [--json|--json-timing] \
             [--deadline-ms N] <file.javax>\n       \
             {program} status|drain [--socket <path>]"
        );
    } else {
        eprintln!(
            "usage: {program} [--json|--json-timing] \
             [--isolation process|in-process] [--racing] [--adaptive] \
             [--slicing] [--deadline-ms N] <file.javax>"
        );
    }
    ExitCode::from(2)
}

/// Build the front-door [`Config`]: flags layered over the environment,
/// everything resolved exactly once inside [`Config::builder`].
///
/// `program` prefixes the diagnosed degradations (an unresolvable own
/// executable, an unwritable `JAHOB_OBS` path) — both degrade with a
/// message, never block verification.
pub fn build_config(program: &str, opts: &CommonOpts) -> Config {
    let mut builder = Config::builder();
    if let Some(iso) = opts.isolation {
        builder = builder.isolation(iso);
    }
    // Flags only turn racing/adaptive/slicing on; absent flags defer to
    // the JAHOB_RACING / JAHOB_ADAPTIVE / JAHOB_SLICING environment
    // inside the builder.
    if opts.racing {
        builder = builder.racing(true);
    }
    if opts.adaptive {
        builder = builder.adaptive(true);
    }
    if opts.slicing {
        builder = builder.slicing(true);
    }
    if let Some(socket) = &opts.socket {
        builder = builder.socket(socket.clone());
    }
    // The front-door binaries serve worker mode themselves, so — unlike
    // the library, which never guesses — it is safe to point the
    // supervisor at the current executable. An explicit
    // JAHOB_WORKER_BIN still wins.
    if std::env::var_os("JAHOB_WORKER_BIN").is_none() {
        match std::env::current_exe() {
            Ok(me) => builder = builder.worker_program(me),
            Err(e) => {
                // Process isolation silently degrades to in-process when
                // no worker binary resolves; say why instead of silence.
                eprintln!("{program}: cannot resolve own executable ({e}); running in-process");
            }
        }
    }
    if let Ok(obs_path) = std::env::var("JAHOB_OBS") {
        match JsonlSink::create(std::path::Path::new(&obs_path)) {
            Ok(sink) => builder = builder.sink(Arc::new(sink)),
            Err(e) => {
                // An unwritable telemetry path must not block
                // verification — diagnose and run without the stream.
                eprintln!("{program}: cannot create JAHOB_OBS file `{obs_path}`: {e}");
            }
        }
    }
    builder.build()
}

/// The human-readable report: the verdict table plus the session
/// summary line(s). One renderer for the one-shot CLI and the daemon's
/// human-mode REPORT frames, so both read identically.
pub fn human_report(report: &VerifyReport, verifier: &Verifier) -> String {
    use std::fmt::Write as _;
    let mut out = format!("{report}");
    let get = |k: &str| report.stats.get(k).copied().unwrap_or(0);
    let _ = writeln!(
        out,
        "workers: {}; isolation: {}; goal cache: {} hit / {} miss",
        verifier.config().effective_workers(),
        match (verifier.config().isolation, verifier.process_backend()) {
            (Isolation::Process, Some(_)) => "process",
            (Isolation::Process, None) => "process (no worker binary; in-process)",
            (Isolation::InProcess, _) => "in-process",
        },
        get("cache.hit"),
        get("cache.miss")
    );
    if verifier.goal_cache().is_some_and(|c| c.is_persistent()) {
        let _ = writeln!(
            out,
            "persistent cache: {} loaded, {} flushed",
            get("store.load.entries"),
            get("store.flush.records")
        );
    }
    out
}

/// Render `report` for `output` — the exact text the one-shot CLI
/// prints and the daemon ships in its final REPORT frame.
pub fn render_report(report: &VerifyReport, verifier: &Verifier, output: OutputMode) -> String {
    match output.render() {
        Some(render) => {
            let mut text = report.to_json(render);
            text.push('\n');
            text
        }
        None => human_report(report, verifier),
    }
}

/// One-shot verification: read, build a session, verify, render, exit
/// through the ladder. The body behind `jahob verify` and the whole of
/// the `verify_file` example.
pub fn run_verify(program: &str, path: &str, opts: &CommonOpts) -> ExitCode {
    let src = match std::fs::read_to_string(path) {
        Ok(src) => src,
        Err(e) => {
            eprintln!("{program}: cannot read `{path}`: {e}");
            return ExitCode::from(2);
        }
    };
    let verifier = Verifier::new(build_config(program, opts));
    let request = RequestOptions {
        deadline: opts.deadline,
        ..RequestOptions::default()
    };
    match verifier.verify_with(&src, &request) {
        Ok(r) => {
            print!("{}", render_report(&r, &verifier, opts.output));
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("pipeline error: {e}");
            ExitCode::from(1)
        }
    }
}

/// `jahob serve`: bind the socket, serve until drained (by a DRAIN
/// frame or SIGTERM/SIGINT), exit 0 after a graceful drain.
pub fn run_serve(program: &str, opts: &CommonOpts) -> ExitCode {
    let config = build_config(program, opts);
    if config.socket.is_none() {
        return usage(program, "serve needs --socket <path> or JAHOB_SOCKET", true);
    }
    service::install_termination_handler();
    let service = match Service::bind(config) {
        Ok(service) => service,
        Err(e) => {
            eprintln!("{program}: cannot serve: {e}");
            return ExitCode::from(2);
        }
    };
    eprintln!("{program}: serving on {}", service.socket_path().display());
    match service.run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("{program}: service failed: {e}");
            ExitCode::from(1)
        }
    }
}

/// `jahob submit`: ship a file to a running daemon and print what it
/// returns. With `JAHOB_OBS=<path>`, the daemon streams the request's
/// JSONL event lines and they are written to `<path>` client-side —
/// the same stream a one-shot run would have written.
pub fn run_submit(program: &str, path: &str, opts: &CommonOpts) -> ExitCode {
    let src = match std::fs::read_to_string(path) {
        Ok(src) => src,
        Err(e) => {
            eprintln!("{program}: cannot read `{path}`: {e}");
            return ExitCode::from(2);
        }
    };
    let Some(socket) = build_config(program, opts).socket else {
        return usage(
            program,
            "submit needs --socket <path> or JAHOB_SOCKET",
            true,
        );
    };
    let mut obs = match std::env::var("JAHOB_OBS") {
        Ok(obs_path) => match std::fs::File::create(&obs_path) {
            Ok(file) => Some(std::io::BufWriter::new(file)),
            Err(e) => {
                eprintln!("{program}: cannot create JAHOB_OBS file `{obs_path}`: {e}");
                None
            }
        },
        Err(_) => None,
    };
    let mut client = match Client::connect(&socket) {
        Ok(client) => client,
        Err(e) => {
            eprintln!("{program}: cannot connect to `{}`: {e}", socket.display());
            return ExitCode::from(2);
        }
    };
    let options = SubmitOptions {
        output: opts.output,
        stream_obs: obs.is_some(),
        stable_obs: false,
        deadline: opts.deadline,
    };
    let outcome = client.submit(&src, &options, |line| {
        if let Some(obs) = &mut obs {
            let _ = writeln!(obs, "{line}");
        }
    });
    if let Some(mut obs) = obs {
        let _ = obs.flush();
    }
    match outcome {
        Ok(SubmitOutcome::Report(text)) => {
            print!("{text}");
            ExitCode::SUCCESS
        }
        Ok(SubmitOutcome::PipelineError(message)) => {
            eprintln!("pipeline error: {message}");
            ExitCode::from(1)
        }
        Ok(SubmitOutcome::Busy {
            queued,
            depth,
            draining,
        }) => {
            eprintln!(
                "{program}: daemon busy (queue {queued}/{depth}{}), try again",
                if draining { ", draining" } else { "" }
            );
            ExitCode::from(2)
        }
        Err(e) => {
            eprintln!("{program}: daemon conversation failed: {e}");
            ExitCode::from(1)
        }
    }
}

/// `jahob status`: one line of queue state from a running daemon.
pub fn run_status(program: &str, opts: &CommonOpts) -> ExitCode {
    let Some(socket) = build_config(program, opts).socket else {
        return usage(
            program,
            "status needs --socket <path> or JAHOB_SOCKET",
            true,
        );
    };
    let mut client = match Client::connect(&socket) {
        Ok(client) => client,
        Err(e) => {
            eprintln!("{program}: cannot connect to `{}`: {e}", socket.display());
            return ExitCode::from(2);
        }
    };
    match client.status() {
        Ok(s) => {
            println!(
                "queue {}/{} ({} in flight){}; accepted {}, completed {}, rejected {}",
                s.queued,
                s.depth,
                s.in_flight,
                if s.draining { "; draining" } else { "" },
                s.accepted,
                s.completed,
                s.rejected
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{program}: daemon conversation failed: {e}");
            ExitCode::from(1)
        }
    }
}

/// `jahob drain`: ask the daemon to finish admitted work and exit.
/// Returns once the daemon acknowledges the drain is complete.
pub fn run_drain(program: &str, opts: &CommonOpts) -> ExitCode {
    let Some(socket) = build_config(program, opts).socket else {
        return usage(program, "drain needs --socket <path> or JAHOB_SOCKET", true);
    };
    let mut client = match Client::connect(&socket) {
        Ok(client) => client,
        Err(e) => {
            eprintln!("{program}: cannot connect to `{}`: {e}", socket.display());
            return ExitCode::from(2);
        }
    };
    match client.drain() {
        Ok(completed) => {
            println!("drained; {completed} request(s) completed over the daemon's lifetime");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{program}: daemon conversation failed: {e}");
            ExitCode::from(1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> Vec<String> {
        s.iter().map(|a| a.to_string()).collect()
    }

    #[test]
    fn implicit_verify_with_flags() {
        let inv = parse(args(&["--json", "x.javax"])).unwrap();
        assert_eq!(
            inv.command,
            Command::Verify {
                path: "x.javax".into()
            }
        );
        assert_eq!(inv.opts.output, OutputMode::Json);
    }

    #[test]
    fn slicing_flag_parses() {
        let inv = parse(args(&["--slicing", "x.javax"])).unwrap();
        assert!(inv.opts.slicing);
        assert!(!inv.opts.racing);
        let inv = parse(args(&["serve", "--slicing", "--socket", "/tmp/s"])).unwrap();
        assert_eq!(inv.command, Command::Serve);
        assert!(inv.opts.slicing);
        // Absent flag stays off (deferring to JAHOB_SLICING in the builder).
        assert!(!parse(args(&["x.javax"])).unwrap().opts.slicing);
    }

    #[test]
    fn subcommands_parse() {
        assert_eq!(
            parse(args(&["serve", "--socket", "/tmp/s"]))
                .unwrap()
                .command,
            Command::Serve
        );
        let inv = parse(args(&["submit", "--socket=/tmp/s", "a.javax"])).unwrap();
        assert_eq!(
            inv.command,
            Command::Submit {
                path: "a.javax".into()
            }
        );
        assert_eq!(
            inv.opts.socket.as_deref(),
            Some(std::path::Path::new("/tmp/s"))
        );
        assert_eq!(parse(args(&["status"])).unwrap().command, Command::Status);
        assert_eq!(parse(args(&["drain"])).unwrap().command, Command::Drain);
        let inv = parse(args(&["verify", "--deadline-ms", "250", "a.javax"])).unwrap();
        assert_eq!(inv.opts.deadline, Some(Duration::from_millis(250)));
    }

    #[test]
    fn bad_invocations_diagnose() {
        assert!(parse(args(&[])).is_err());
        assert!(parse(args(&["--isolation"])).is_err());
        assert!(parse(args(&["--isolation", "weird", "x.javax"])).is_err());
        assert!(parse(args(&["serve", "stray.javax"])).is_err());
        assert!(parse(args(&["submit"])).is_err());
        assert!(parse(args(&["--deadline-ms", "zero", "x.javax"])).is_err());
        assert!(parse(args(&["a.javax", "b.javax"])).is_err());
        assert!(parse(args(&["--frobnicate", "x.javax"])).is_err());
    }

    #[test]
    fn output_modes_map_to_render() {
        assert_eq!(OutputMode::Human.render(), None);
        assert_eq!(OutputMode::Json.render(), Some(ReportRender::STABLE));
        assert_eq!(OutputMode::JsonTiming.render(), Some(ReportRender::TIMING));
    }
}
