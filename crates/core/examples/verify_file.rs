//! Verify a `.javax` file from the command line:
//!
//! ```sh
//! cargo run -p jahob --example verify_file -- case_studies/list.javax
//! JAHOB_WORKERS=8 cargo run -p jahob --example verify_file -- case_studies/list.javax
//! cargo run -p jahob --example verify_file -- --json case_studies/list.javax
//! JAHOB_OBS=run.jsonl cargo run -p jahob --example verify_file -- case_studies/list.javax
//! ```
//!
//! Methods fan out across `JAHOB_WORKERS` threads and share a
//! normalized-goal cache; the report is identical at any worker count.
//!
//! * `--json` prints the structural report as stable JSON (no wall-clock
//!   fields) instead of the human-readable table; `--json-timing` keeps
//!   the wall-clock in.
//! * `JAHOB_OBS=<path>` streams the run's full event stream to `<path>`
//!   as JSONL (timing included).
use std::sync::Arc;

fn main() {
    let mut json = false;
    let mut json_timing = false;
    let mut path = None;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--json" => json = true,
            "--json-timing" => json_timing = true,
            other => path = Some(other.to_owned()),
        }
    }
    let path = path.expect("usage: verify_file [--json|--json-timing] <file.javax>");
    let src = std::fs::read_to_string(&path).unwrap();

    let mut builder = jahob::Config::builder(); // workers: JAHOB_WORKERS, cache on
    if let Ok(obs_path) = std::env::var("JAHOB_OBS") {
        let sink = jahob::JsonlSink::create(std::path::Path::new(&obs_path))
            .expect("create JAHOB_OBS file");
        builder = builder.sink(Arc::new(sink));
    }
    let verifier = builder.build_verifier();
    match verifier.verify(&src) {
        Ok(r) if json => println!("{}", r.to_json()),
        Ok(r) if json_timing => println!("{}", r.to_json_with_timing()),
        Ok(r) => {
            print!("{r}");
            let get = |k: &str| r.stats.get(k).copied().unwrap_or(0);
            println!(
                "workers: {}; goal cache: {} hit / {} miss",
                verifier.config().effective_workers(),
                get("cache.hit"),
                get("cache.miss")
            );
        }
        Err(e) => println!("pipeline error: {e}"),
    }
}
