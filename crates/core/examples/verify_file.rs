//! Verify a `.javax` file from the command line:
//!
//! ```sh
//! cargo run -p jahob --example verify_file -- case_studies/list.javax
//! JAHOB_WORKERS=8 cargo run -p jahob --example verify_file -- case_studies/list.javax
//! cargo run -p jahob --example verify_file -- --json case_studies/list.javax
//! cargo run -p jahob --example verify_file -- --isolation process case_studies/list.javax
//! JAHOB_OBS=run.jsonl cargo run -p jahob --example verify_file -- case_studies/list.javax
//! JAHOB_CACHE=.jahob-cache cargo run -p jahob --example verify_file -- case_studies/list.javax
//! ```
//!
//! Methods fan out across `JAHOB_WORKERS` threads and share a
//! normalized-goal cache; the report is identical at any worker count.
//!
//! * `--json` prints the structural report as stable JSON (no wall-clock
//!   fields) instead of the human-readable table; `--json-timing` keeps
//!   the wall-clock in.
//! * `--isolation process|in-process` selects the execution backend
//!   (default: `JAHOB_ISOLATION`, else in-process). With `process`, the
//!   remotable provers run in supervised children of this same binary
//!   (the hidden `worker` mode below); verdicts are identical either way.
//! * `--racing` / `--adaptive` enable speculative prover racing and
//!   adaptive race ordering (defaults: `JAHOB_RACING` /
//!   `JAHOB_ADAPTIVE`, else off). Verdicts and the canonical stream are
//!   identical either way; only wall-clock moves.
//! * `JAHOB_OBS=<path>` streams the run's full event stream to `<path>`
//!   as JSONL (timing included).
//! * `JAHOB_CACHE=<dir>` persists the goal cache to `<dir>` across
//!   invocations: the next run replays every surviving proof
//!   (crash-safe; corruption degrades to a cold cache, never an error).
//!
//! The hidden `worker` subcommand is the supervisor's child half —
//! this binary re-exec'd with its stdin/stdout owned by the parent.
//!
//! Exit codes: `0` on a completed run (whatever the verdicts), `1` on a
//! pipeline error (parse/resolve), `2` on unusable arguments or an
//! unreadable input/output path — and, in worker mode, on a failed
//! supervisor pipe — always with a diagnosed message, never a panic.
use std::process::ExitCode;
use std::sync::Arc;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();

    // Worker mode: spawned by the supervisor, not by people. Pipe and
    // spawn failures are diagnosed onto the exit-code ladder — a dead
    // parent or a mid-frame kill must never read as a prover panic.
    if args.first().map(String::as_str) == Some("worker") {
        return match jahob::worker_main() {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("verify_file worker: supervisor pipe failed: {e}");
                ExitCode::from(2)
            }
        };
    }

    let mut json = false;
    let mut json_timing = false;
    let mut isolation = None;
    let mut racing = false;
    let mut adaptive = false;
    let mut path = None;
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--json-timing" => json_timing = true,
            "--racing" => racing = true,
            "--adaptive" => adaptive = true,
            "--isolation" => match iter.next().as_deref().map(parse_isolation) {
                Some(Some(iso)) => isolation = Some(iso),
                _ => return usage("--isolation needs a mode (process|in-process)"),
            },
            other => match other.strip_prefix("--isolation=") {
                Some(mode) => match parse_isolation(mode) {
                    Some(iso) => isolation = Some(iso),
                    None => return usage(&format!("unknown isolation mode `{mode}`")),
                },
                None => path = Some(other.to_owned()),
            },
        }
    }
    let Some(path) = path else {
        return usage("no input file");
    };
    let src = match std::fs::read_to_string(&path) {
        Ok(src) => src,
        Err(e) => {
            eprintln!("verify_file: cannot read `{path}`: {e}");
            return ExitCode::from(2);
        }
    };

    // Workers come from JAHOB_WORKERS, the persistent cache directory
    // from JAHOB_CACHE, the isolation default from JAHOB_ISOLATION —
    // all resolved once inside the builder.
    let mut builder = jahob::Config::builder();
    if let Some(iso) = isolation {
        builder = builder.isolation(iso);
    }
    // Flags only turn racing/adaptive on; absent flags defer to the
    // JAHOB_RACING / JAHOB_ADAPTIVE environment inside the builder.
    if racing {
        builder = builder.racing(true);
    }
    if adaptive {
        builder = builder.adaptive(true);
    }
    // This binary serves worker mode itself, so pointing the supervisor
    // at the current executable cannot fork-bomb. An explicit
    // JAHOB_WORKER_BIN still wins; an unresolvable own path degrades to
    // the in-process backend with a diagnosis instead of an unwrap.
    if std::env::var_os("JAHOB_WORKER_BIN").is_none() {
        match std::env::current_exe() {
            Ok(me) => builder = builder.worker_program(me),
            Err(e) => {
                eprintln!("verify_file: cannot resolve own executable ({e}); running in-process");
            }
        }
    }
    if let Ok(obs_path) = std::env::var("JAHOB_OBS") {
        match jahob::JsonlSink::create(std::path::Path::new(&obs_path)) {
            Ok(sink) => builder = builder.sink(Arc::new(sink)),
            Err(e) => {
                // An unwritable telemetry path must not block
                // verification — diagnose and run without the stream.
                eprintln!("verify_file: cannot create JAHOB_OBS file `{obs_path}`: {e}");
            }
        }
    }
    let verifier = builder.build_verifier();
    match verifier.verify(&src) {
        Ok(r) if json => println!("{}", r.to_json()),
        Ok(r) if json_timing => println!("{}", r.to_json_with_timing()),
        Ok(r) => {
            print!("{r}");
            let get = |k: &str| r.stats.get(k).copied().unwrap_or(0);
            println!(
                "workers: {}; isolation: {}; goal cache: {} hit / {} miss",
                verifier.config().effective_workers(),
                match (verifier.config().isolation, verifier.process_backend()) {
                    (jahob::Isolation::Process, Some(_)) => "process",
                    (jahob::Isolation::Process, None) => "process (no worker binary; in-process)",
                    (jahob::Isolation::InProcess, _) => "in-process",
                },
                get("cache.hit"),
                get("cache.miss")
            );
            if verifier.goal_cache().is_some_and(|c| c.is_persistent()) {
                println!(
                    "persistent cache: {} loaded, {} flushed",
                    get("store.load.entries"),
                    get("store.flush.records")
                );
            }
        }
        Err(e) => {
            eprintln!("pipeline error: {e}");
            return ExitCode::from(1);
        }
    }
    ExitCode::SUCCESS
}

fn parse_isolation(mode: &str) -> Option<jahob::Isolation> {
    match mode {
        "process" => Some(jahob::Isolation::Process),
        "in-process" => Some(jahob::Isolation::InProcess),
        _ => None,
    }
}

fn usage(why: &str) -> ExitCode {
    eprintln!("verify_file: {why}");
    eprintln!(
        "usage: verify_file [--json|--json-timing] [--isolation process|in-process] \
         [--racing] [--adaptive] <file.javax>"
    );
    ExitCode::from(2)
}
