//! Verify a `.javax` file from the command line:
//!
//! ```sh
//! cargo run -p jahob --example verify_file -- case_studies/list.javax
//! JAHOB_WORKERS=8 cargo run -p jahob --example verify_file -- case_studies/list.javax
//! ```
//!
//! Methods fan out across `JAHOB_WORKERS` threads and share a
//! normalized-goal cache; the report is identical at any worker count.
fn main() {
    let path = std::env::args().nth(1).unwrap();
    let src = std::fs::read_to_string(&path).unwrap();
    let config = jahob::Config::default(); // workers: 0 → JAHOB_WORKERS, cache on
    match jahob::verify_source(&src, &config) {
        Ok(r) => {
            print!("{r}");
            let get = |k: &str| r.stats.get(k).copied().unwrap_or(0);
            println!(
                "workers: {}; goal cache: {} hit / {} miss",
                config.effective_workers(),
                get("cache.hit"),
                get("cache.miss")
            );
        }
        Err(e) => println!("pipeline error: {e}"),
    }
}
