//! Verify a `.javax` file from the command line:
//!
//! ```sh
//! cargo run -p jahob --example verify_file -- case_studies/list.javax
//! ```
fn main() {
    let path = std::env::args().nth(1).unwrap();
    let src = std::fs::read_to_string(&path).unwrap();
    match jahob::verify_source(&src, &jahob::Config::default()) {
        Ok(r) => println!("{r}"),
        Err(e) => println!("pipeline error: {e}"),
    }
}
