//! End-to-end driver: verify a `.javax` file through the [`jahob::cli`]
//! front door — the same grammar, environment layering, rendering, and
//! exit-code ladder as `jahob verify`, minus the daemon subcommands.
//!
//! ```sh
//! cargo run -p jahob --example verify_file -- case_studies/list.javax
//! cargo run -p jahob --example verify_file -- --json case_studies/list.javax
//! JAHOB_ISOLATION=process cargo run -p jahob --example verify_file -- case_studies/list.javax
//! JAHOB_OBS=run.jsonl cargo run -p jahob --example verify_file -- case_studies/list.javax
//! ```
//!
//! The flags and environment variables are documented on
//! [`jahob::Config`] and in the `jahob` binary; everything resolves
//! exactly once inside `Config::builder`.
//!
//! The hidden `worker` mode is the supervised child half of process
//! isolation (this example re-exec'd by its own supervisor); it is not
//! for interactive use.
use jahob::cli::{self, Command};
use std::process::ExitCode;

fn main() -> ExitCode {
    let program = "verify_file";
    let mut args = std::env::args().skip(1).peekable();

    if args.peek().map(String::as_str) == Some("worker") {
        return match jahob::worker_main() {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("{program} worker: pipe error: {e}");
                ExitCode::from(2)
            }
        };
    }

    let invocation = match cli::parse(args.collect()) {
        Ok(invocation) => invocation,
        Err(why) => return cli::usage(program, &why, false),
    };
    match &invocation.command {
        Command::Verify { path } => cli::run_verify(program, path, &invocation.opts),
        _ => cli::usage(
            program,
            "only one-shot verification here; the daemon lives in the `jahob` binary",
            false,
        ),
    }
}
