//! Verify a `.javax` file from the command line:
//!
//! ```sh
//! cargo run -p jahob --example verify_file -- case_studies/list.javax
//! JAHOB_WORKERS=8 cargo run -p jahob --example verify_file -- case_studies/list.javax
//! cargo run -p jahob --example verify_file -- --json case_studies/list.javax
//! JAHOB_OBS=run.jsonl cargo run -p jahob --example verify_file -- case_studies/list.javax
//! JAHOB_CACHE=.jahob-cache cargo run -p jahob --example verify_file -- case_studies/list.javax
//! ```
//!
//! Methods fan out across `JAHOB_WORKERS` threads and share a
//! normalized-goal cache; the report is identical at any worker count.
//!
//! * `--json` prints the structural report as stable JSON (no wall-clock
//!   fields) instead of the human-readable table; `--json-timing` keeps
//!   the wall-clock in.
//! * `JAHOB_OBS=<path>` streams the run's full event stream to `<path>`
//!   as JSONL (timing included).
//! * `JAHOB_CACHE=<dir>` persists the goal cache to `<dir>` across
//!   invocations: the next run replays every surviving proof
//!   (crash-safe; corruption degrades to a cold cache, never an error).
//!
//! Exit codes: `0` on a completed run (whatever the verdicts), `1` on a
//! pipeline error (parse/resolve), `2` on unusable arguments or an
//! unreadable input/output path — always with a diagnosed message,
//! never a panic.
use std::process::ExitCode;
use std::sync::Arc;

fn main() -> ExitCode {
    let mut json = false;
    let mut json_timing = false;
    let mut path = None;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--json" => json = true,
            "--json-timing" => json_timing = true,
            other => path = Some(other.to_owned()),
        }
    }
    let Some(path) = path else {
        eprintln!("usage: verify_file [--json|--json-timing] <file.javax>");
        return ExitCode::from(2);
    };
    let src = match std::fs::read_to_string(&path) {
        Ok(src) => src,
        Err(e) => {
            eprintln!("verify_file: cannot read `{path}`: {e}");
            return ExitCode::from(2);
        }
    };

    // Workers come from JAHOB_WORKERS, the persistent cache directory
    // from JAHOB_CACHE — both resolved once inside the builder.
    let mut builder = jahob::Config::builder();
    if let Ok(obs_path) = std::env::var("JAHOB_OBS") {
        match jahob::JsonlSink::create(std::path::Path::new(&obs_path)) {
            Ok(sink) => builder = builder.sink(Arc::new(sink)),
            Err(e) => {
                // An unwritable telemetry path must not block
                // verification — diagnose and run without the stream.
                eprintln!("verify_file: cannot create JAHOB_OBS file `{obs_path}`: {e}");
            }
        }
    }
    let verifier = builder.build_verifier();
    match verifier.verify(&src) {
        Ok(r) if json => println!("{}", r.to_json()),
        Ok(r) if json_timing => println!("{}", r.to_json_with_timing()),
        Ok(r) => {
            print!("{r}");
            let get = |k: &str| r.stats.get(k).copied().unwrap_or(0);
            println!(
                "workers: {}; goal cache: {} hit / {} miss",
                verifier.config().effective_workers(),
                get("cache.hit"),
                get("cache.miss")
            );
            if verifier.goal_cache().is_some_and(|c| c.is_persistent()) {
                println!(
                    "persistent cache: {} loaded, {} flushed",
                    get("store.load.entries"),
                    get("store.flush.records")
                );
            }
        }
        Err(e) => {
            eprintln!("pipeline error: {e}");
            return ExitCode::from(1);
        }
    }
    ExitCode::SUCCESS
}
