//! `jahob-repro`: the top-level facade of the Jahob reproduction.
//!
//! Re-exports the public API of every workspace crate so the examples and
//! integration tests can reach the whole system through one dependency.
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! paper-versus-measured record.

pub use jahob;
pub use jahob_bapa as bapa;
pub use jahob_euf as euf;
pub use jahob_fca as fca;
pub use jahob_fol as fol;
pub use jahob_hol as hol;
pub use jahob_javalite as javalite;
pub use jahob_logic as logic;
pub use jahob_models as models;
pub use jahob_mona as mona;
pub use jahob_presburger as presburger;
pub use jahob_sat as sat;
pub use jahob_shape as shape;
pub use jahob_smt as smt;
pub use jahob_util as util;
pub use jahob_vcgen as vcgen;
