//! The `jahob` command-line front end.
//!
//! ```sh
//! jahob case_studies/list.javax
//! jahob --json case_studies/list.javax
//! jahob --isolation process case_studies/list.javax
//! jahob serve --socket /tmp/jahob.sock &
//! jahob submit --socket /tmp/jahob.sock case_studies/list.javax
//! jahob status --socket /tmp/jahob.sock
//! jahob drain --socket /tmp/jahob.sock
//! ```
//!
//! Subcommands (the first argument; a path or flag falls through to the
//! implicit `verify`):
//!
//! * `verify <file>` — one-shot verification in this process.
//! * `serve` — the persistent verification daemon: one warm session
//!   (goal cache, persistent store, adaptive statistics, supervisor
//!   lanes) shared across every client of a Unix-domain socket, with a
//!   bounded admission queue and graceful drain on SIGTERM.
//! * `submit <file>` — ship a file to a running daemon; prints exactly
//!   what `verify` would, and with `JAHOB_OBS=<path>` writes the
//!   request's streamed JSONL event lines client-side.
//! * `status` / `drain` — probe or gracefully stop a running daemon.
//!
//! The grammar, environment layering, and exit-code ladder live in
//! [`jahob::cli`], shared with the `verify_file` example and the
//! daemon's own rendering: `0` on a completed run (whatever the
//! verdicts), `1` on a pipeline error or broken daemon conversation,
//! `2` on unusable arguments, unreadable paths, a refused connection,
//! or a BUSY admission refusal — always diagnosed, never a panic.
//!
//! The hidden `worker` subcommand is the child half of process
//! isolation: this same binary re-exec'd by the supervisor, speaking the
//! framed IPC protocol on stdin/stdout. It is not for interactive use.
use jahob::cli::{self, Command};
use std::process::ExitCode;

fn main() -> ExitCode {
    let program = "jahob";
    let mut args = std::env::args().skip(1).peekable();

    // Hidden worker mode: checked before the front-door parser so the
    // supervisor's child half never collides with user flags.
    if args.peek().map(String::as_str) == Some("worker") {
        return match jahob::worker_main() {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("{program} worker: pipe error: {e}");
                ExitCode::from(2)
            }
        };
    }

    let invocation = match cli::parse(args.collect()) {
        Ok(invocation) => invocation,
        Err(why) => return cli::usage(program, &why, true),
    };
    match &invocation.command {
        Command::Verify { path } => cli::run_verify(program, path, &invocation.opts),
        Command::Serve => cli::run_serve(program, &invocation.opts),
        Command::Submit { path } => cli::run_submit(program, path, &invocation.opts),
        Command::Status => cli::run_status(program, &invocation.opts),
        Command::Drain => cli::run_drain(program, &invocation.opts),
    }
}
