//! The `jahob` command-line front end.
//!
//! ```sh
//! jahob case_studies/list.javax
//! jahob --json case_studies/list.javax
//! jahob --isolation process case_studies/list.javax
//! JAHOB_ISOLATION=process JAHOB_WORKERS=8 jahob case_studies/list.javax
//! ```
//!
//! * `--json` / `--json-timing` print the report as JSON (stable /
//!   with wall-clock) instead of the human-readable table.
//! * `--isolation process|in-process` selects the execution backend:
//!   `process` runs the remotable provers in supervised child processes
//!   (hard SIGKILL deadlines, per-child memory ceilings, crash-loop
//!   quarantine with graceful in-process fallback); `in-process` is the
//!   classical single-process path. Defaults to `JAHOB_ISOLATION`, else
//!   in-process. Verdicts are identical either way.
//! * `--racing` races the remotable provers speculatively per
//!   obligation and takes the first decision; `--adaptive` seeds each
//!   race with the historically best prover first (statistics persist
//!   under `<JAHOB_CACHE>/adaptive` when a cache directory is set).
//!   Defaults: `JAHOB_RACING` / `JAHOB_ADAPTIVE`, else off. Verdicts
//!   and the canonical event stream are identical either way — these
//!   flags only move wall-clock.
//! * `JAHOB_WORKERS`, `JAHOB_OBS`, `JAHOB_CACHE`, `JAHOB_WORKER_MEM`,
//!   `JAHOB_WORKER_DEADLINE_MS` behave as documented on
//!   [`jahob::Config`].
//!
//! The hidden `worker` subcommand is the child half of process
//! isolation: this same binary re-exec'd by the supervisor, speaking the
//! framed IPC protocol on stdin/stdout. It is not for interactive use.
//!
//! Exit codes: `0` on a completed run (whatever the verdicts), `1` on a
//! pipeline error (parse/resolve), `2` on unusable arguments or an
//! unreadable input/output path — always with a diagnosed message,
//! never a panic.
use std::process::ExitCode;
use std::sync::Arc;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();

    // Hidden worker mode: the supervisor re-execs this binary as
    // `jahob worker` and owns its stdin/stdout. A broken pipe here means
    // the parent died or killed us mid-frame — diagnose on stderr (the
    // supervisor keeps a tail of it for crash reports) and exit through
    // the ladder, never a panic.
    if args.first().map(String::as_str) == Some("worker") {
        return match jahob::worker_main() {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("jahob worker: supervisor pipe failed: {e}");
                ExitCode::from(2)
            }
        };
    }

    let mut json = false;
    let mut json_timing = false;
    let mut isolation = None;
    let mut racing = false;
    let mut adaptive = false;
    let mut path = None;
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--json-timing" => json_timing = true,
            "--racing" => racing = true,
            "--adaptive" => adaptive = true,
            "--isolation" => match iter.next() {
                Some(mode) => match parse_isolation(&mode) {
                    Some(iso) => isolation = Some(iso),
                    None => return usage(&format!("unknown isolation mode `{mode}`")),
                },
                None => return usage("--isolation needs a mode (process|in-process)"),
            },
            other => match other.strip_prefix("--isolation=") {
                Some(mode) => match parse_isolation(mode) {
                    Some(iso) => isolation = Some(iso),
                    None => return usage(&format!("unknown isolation mode `{mode}`")),
                },
                None => path = Some(other.to_owned()),
            },
        }
    }
    let Some(path) = path else {
        return usage("no input file");
    };
    let src = match std::fs::read_to_string(&path) {
        Ok(src) => src,
        Err(e) => {
            eprintln!("jahob: cannot read `{path}`: {e}");
            return ExitCode::from(2);
        }
    };

    let mut builder = jahob::Config::builder();
    if let Some(iso) = isolation {
        builder = builder.isolation(iso);
    }
    // Flags only turn racing/adaptive on; absent flags defer to the
    // JAHOB_RACING / JAHOB_ADAPTIVE environment inside the builder.
    if racing {
        builder = builder.racing(true);
    }
    if adaptive {
        builder = builder.adaptive(true);
    }
    // This binary serves worker mode itself, so — unlike the library,
    // which never guesses — it is safe to point the supervisor at the
    // current executable. An explicit JAHOB_WORKER_BIN still wins.
    if std::env::var_os("JAHOB_WORKER_BIN").is_none() {
        match std::env::current_exe() {
            Ok(me) => builder = builder.worker_program(me),
            Err(e) => {
                // Process isolation silently degrades to in-process when
                // no worker binary resolves; say why instead of silence.
                eprintln!("jahob: cannot resolve own executable ({e}); running in-process");
            }
        }
    }
    if let Ok(obs_path) = std::env::var("JAHOB_OBS") {
        match jahob::JsonlSink::create(std::path::Path::new(&obs_path)) {
            Ok(sink) => builder = builder.sink(Arc::new(sink)),
            Err(e) => {
                eprintln!("jahob: cannot create JAHOB_OBS file `{obs_path}`: {e}");
            }
        }
    }
    let verifier = builder.build_verifier();
    match verifier.verify(&src) {
        Ok(r) if json => println!("{}", r.to_json()),
        Ok(r) if json_timing => println!("{}", r.to_json_with_timing()),
        Ok(r) => {
            print!("{r}");
            let get = |k: &str| r.stats.get(k).copied().unwrap_or(0);
            println!(
                "workers: {}; isolation: {}; goal cache: {} hit / {} miss",
                verifier.config().effective_workers(),
                match (verifier.config().isolation, verifier.process_backend()) {
                    (jahob::Isolation::Process, Some(_)) => "process",
                    (jahob::Isolation::Process, None) => "process (no worker binary; in-process)",
                    (jahob::Isolation::InProcess, _) => "in-process",
                },
                get("cache.hit"),
                get("cache.miss")
            );
        }
        Err(e) => {
            eprintln!("pipeline error: {e}");
            return ExitCode::from(1);
        }
    }
    ExitCode::SUCCESS
}

fn parse_isolation(mode: &str) -> Option<jahob::Isolation> {
    match mode {
        "process" => Some(jahob::Isolation::Process),
        "in-process" => Some(jahob::Isolation::InProcess),
        _ => None,
    }
}

fn usage(why: &str) -> ExitCode {
    eprintln!("jahob: {why}");
    eprintln!(
        "usage: jahob [--json|--json-timing] [--isolation process|in-process] \
         [--racing] [--adaptive] <file.javax>"
    );
    ExitCode::from(2)
}
