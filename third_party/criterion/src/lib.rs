//! A small, offline stand-in for the `criterion` benchmark harness.
//!
//! The build environment cannot reach crates.io, so this vendored crate
//! implements the subset of criterion's API the workspace's benches use:
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`],
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkId`], [`Bencher::iter`],
//! [`black_box`], and the [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Instead of criterion's statistical sampling it runs each body
//! `sample_size` times and prints the mean wall-clock time — enough to
//! smoke-test the benchmarks and eyeball regressions, with zero deps.

use std::fmt;
use std::time::{Duration, Instant};

/// Prevent the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level harness handle.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: 10,
            _criterion: self,
        }
    }

    /// Benchmark a single function outside any group.
    pub fn bench_function<F>(&mut self, name: &str, mut body: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, 10, &mut body);
        self
    }
}

/// A named benchmark group (`Criterion::benchmark_group`).
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set how many times each body runs (criterion's sample count).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmark a closure under `group/name`.
    pub fn bench_function<F>(&mut self, name: impl fmt::Display, mut body: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(
            &format!("{}/{}", self.name, name),
            self.sample_size,
            &mut body,
        );
        self
    }

    /// Benchmark a closure over a borrowed input under `group/id`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut body: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        let mut wrapped = |b: &mut Bencher| body(b, input);
        run_one(&label, self.sample_size, &mut wrapped);
        self
    }

    /// End the group (printing is per-benchmark; nothing to flush).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, samples: usize, body: &mut F) {
    let mut bencher = Bencher {
        elapsed: Duration::ZERO,
        iterations: 0,
    };
    for _ in 0..samples {
        body(&mut bencher);
    }
    let mean = if bencher.iterations > 0 {
        bencher.elapsed / bencher.iterations as u32
    } else {
        Duration::ZERO
    };
    println!(
        "bench {label}: {mean:?}/iter ({} iters)",
        bencher.iterations
    );
}

/// Passed to benchmark bodies; time a closure with [`Bencher::iter`].
pub struct Bencher {
    elapsed: Duration,
    iterations: u64,
}

impl Bencher {
    /// Run and time one iteration of the benchmarked routine.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        black_box(routine());
        self.elapsed += start.elapsed();
        self.iterations += 1;
    }
}

/// A benchmark identifier within a group.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: format!("{name}/{parameter}"),
        }
    }

    /// Just the parameter (for single-function groups).
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

/// Bundle benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_counts_iterations() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("stub");
        group.sample_size(3);
        let mut runs = 0u32;
        group.bench_function("count", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        group.finish();
        assert_eq!(runs, 3);
    }

    #[test]
    fn bench_with_input_passes_input() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("stub");
        group.sample_size(2);
        let data = vec![1, 2, 3];
        let mut total = 0;
        group.bench_with_input(BenchmarkId::from_parameter(3), &data, |b, d| {
            b.iter(|| {
                total += d.len();
            })
        });
        group.finish();
        assert_eq!(total, 6);
    }
}
