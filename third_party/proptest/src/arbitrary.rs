//! `any::<T>()` for the primitive types the workspace generates.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types with a canonical full-range generator.
pub trait Arbitrary {
    /// Draw an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.bool()
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The strategy returned by [`any`].
pub struct AnyStrategy<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy producing any value of `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}
