//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// An inclusive length range for generated collections.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// The strategy returned by [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.hi - self.size.lo + 1) as u64;
        let len = self.size.lo + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Generate a `Vec` whose length lies in `size` and whose elements come
/// from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn lengths_respect_range() {
        let mut rng = TestRng::from_name("collection-tests");
        let s = vec(0u8..10, 2..5);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
        let t = vec(0u8..10, 1..=3);
        for _ in 0..200 {
            assert!((1..=3).contains(&t.generate(&mut rng).len()));
        }
    }
}
