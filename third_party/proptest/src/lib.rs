//! A small, offline stand-in for the `proptest` crate.
//!
//! The build environment cannot reach crates.io, so this vendored crate
//! implements the subset of proptest's API that the workspace uses:
//! strategies ([`strategy::Strategy`]) with `prop_map` / `prop_recursive` /
//! tuple / range / [`strategy::Just`] / [`prop_oneof!`] combinators,
//! `collection::vec`, [`arbitrary::any`], and the [`proptest!`] test macro
//! with `prop_assert!` / `prop_assert_eq!`.
//!
//! Differences from the real crate, deliberately accepted:
//!
//! * **No shrinking.** A failing case panics with the generated value's
//!   `Debug` where available via the assertion message; minimization is up
//!   to the reader.
//! * **Deterministic seeding.** Every test function derives its RNG seed
//!   from its own name, so runs are reproducible without a persistence
//!   file (`*.proptest-regressions` files are ignored).

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The glob-import surface: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Uniform choice between several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Property assertion; identical to `assert!` here (no shrink phase to
/// abort, so an ordinary panic is the right failure mode).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Property equality assertion; identical to `assert_eq!` here.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Property inequality assertion; identical to `assert_ne!` here.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// The test-definition macro. Supports the same shape the workspace uses:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_property(x in some_strategy(), y in other_strategy()) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($config) $($rest)*);
    };
    (@with_config ($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let mut rng =
                    $crate::test_runner::TestRng::from_name(stringify!($name));
                for _case in 0..config.cases {
                    $(
                        let $arg =
                            $crate::strategy::Strategy::generate(&$strategy, &mut rng);
                    )+
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(
            @with_config ($crate::test_runner::ProptestConfig::default()) $($rest)*
        );
    };
}
