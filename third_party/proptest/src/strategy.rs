//! The `Strategy` trait and combinators: the generation half of proptest's
//! API (shrinking is intentionally absent — see the crate docs).

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with a pure function.
    fn prop_map<U, F>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { base: self, map }
    }

    /// Build a recursive strategy: `self` generates leaves and `recurse`
    /// lifts a strategy for subtrees into one for a whole node. `depth`
    /// bounds nesting; the size/branch hints of the real proptest API are
    /// accepted but unused (our trees are bounded by `depth` alone).
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.boxed();
        let mut current = leaf.clone();
        for _ in 0..depth {
            let deeper = recurse(current.clone()).boxed();
            // Bottom out at a leaf 1 time in 4 so trees vary in height.
            current = OneOf::weighted(vec![(1, leaf.clone()), (3, deeper)]).boxed();
        }
        current
    }

    /// Type-erase into a clonable, shareable strategy handle.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Rc::new(self),
        }
    }
}

/// Object-safe generation, implemented for every `Strategy`.
trait DynStrategy<T> {
    fn dyn_generate(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased, reference-counted strategy (`Strategy::boxed`).
pub struct BoxedStrategy<T> {
    inner: Rc<dyn DynStrategy<T>>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            inner: Rc::clone(&self.inner),
        }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.inner.dyn_generate(rng)
    }
}

/// Always produce a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `Strategy::prop_map` adaptor.
pub struct Map<S, F> {
    base: S,
    map: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.map)(self.base.generate(rng))
    }
}

/// Weighted choice among strategies of a common value type; the
/// [`prop_oneof!`](crate::prop_oneof) macro builds the uniform case.
pub struct OneOf<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total_weight: u64,
}

impl<T> OneOf<T> {
    /// Uniform choice.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> OneOf<T> {
        OneOf::weighted(arms.into_iter().map(|s| (1, s)).collect())
    }

    /// Weighted choice; weights need not be normalized.
    pub fn weighted(arms: Vec<(u32, BoxedStrategy<T>)>) -> OneOf<T> {
        assert!(!arms.is_empty(), "OneOf needs at least one arm");
        let total_weight = arms.iter().map(|&(w, _)| w as u64).sum();
        assert!(total_weight > 0, "OneOf needs positive total weight");
        OneOf { arms, total_weight }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let mut ticket = rng.below(self.total_weight);
        for (weight, arm) in &self.arms {
            if ticket < *weight as u64 {
                return arm.generate(rng);
            }
            ticket -= *weight as u64;
        }
        unreachable!("ticket below total weight")
    }
}

macro_rules! int_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategies {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::from_name("strategy-tests")
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = rng();
        for _ in 0..500 {
            let v = (3u8..7).generate(&mut r);
            assert!((3..7).contains(&v));
            let w = (-2i32..=2).generate(&mut r);
            assert!((-2..=2).contains(&w));
        }
    }

    #[test]
    fn map_and_tuple_compose() {
        let mut r = rng();
        let s = (0u32..10, 0u32..10).prop_map(|(a, b)| a + b);
        for _ in 0..100 {
            assert!(s.generate(&mut r) < 20);
        }
    }

    #[test]
    fn oneof_hits_every_arm() {
        let mut r = rng();
        let s = crate::prop_oneof![Just(0u8), Just(1u8), Just(2u8)];
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[s.generate(&mut r) as usize] = true;
        }
        assert_eq!(seen, [true, true, true]);
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Debug)]
        #[allow(dead_code)]
        enum Tree {
            Leaf(u8),
            Node(Box<Tree>, Box<Tree>),
        }
        fn depth(t: &Tree) -> u32 {
            match t {
                Tree::Leaf(_) => 0,
                Tree::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let strat = (0u8..4)
            .prop_map(Tree::Leaf)
            .prop_recursive(3, 24, 2, |inner| {
                (inner.clone(), inner).prop_map(|(a, b)| Tree::Node(Box::new(a), Box::new(b)))
            });
        let mut r = rng();
        for _ in 0..200 {
            assert!(depth(&strat.generate(&mut r)) <= 3);
        }
    }
}
