//! Deterministic RNG and per-test configuration.

/// Per-test configuration; only the case count is honored.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test function.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` generated inputs.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// A splitmix64/xorshift-style deterministic generator. Seeded from the
/// test function's name so each test gets a stable, distinct stream.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from an arbitrary string (FNV-1a), avoiding the zero state.
    pub fn from_name(name: &str) -> TestRng {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng {
            state: h | 1, // never zero
        }
    }

    /// Next raw 64-bit value (xorshift64*).
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform value in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Modulo bias is irrelevant at test-generation quality.
        self.next_u64() % bound
    }

    /// Uniform boolean.
    pub fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = TestRng::from_name("alpha");
        let mut b = TestRng::from_name("alpha");
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn distinct_names_distinct_streams() {
        let mut a = TestRng::from_name("alpha");
        let mut b = TestRng::from_name("beta");
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 16);
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = TestRng::from_name("bound");
        for _ in 0..1000 {
            assert!(rng.below(7) < 7);
        }
    }
}
