//! Bug finding with the bounded model finder (the Alloy-style complement of
//! §4's "bug finding tools for complex properties"): seeded bugs in List
//! variants are caught with concrete heap counterexamples.
//!
//! ```sh
//! cargo run --release --example find_bug
//! ```

/// `add` that forgets to link the new node (`n.next = first` dropped).
const BROKEN_ADD: &str = r#"
class List {
   private Node first;
   /*:
     private specvar nodes :: objset;
     private vardefs "nodes == { n. n ~= null & rtrancl_pt (% x y. x..Node.next = y) first n}";
     public specvar content :: objset;
     private vardefs "content == {x. EX n. x = n..Node.data & n : nodes}";
   */
   public void add(Object o)
   /*: requires "o ~: content & o ~= null"
       modifies content
       ensures "content = old content Un {o}" */
   {
      Node n = new Node();
      n.data = o;
      first = n;
   }
}
class Node {
   public /*: claimedby List */ Object data;
   public /*: claimedby List */ Node next;
}
"#;

/// `empty` with the comparison inverted.
const BROKEN_EMPTY: &str = r#"
class List {
   private Node first;
   /*:
     private specvar nodes :: objset;
     private vardefs "nodes == { n. n ~= null & rtrancl_pt (% x y. x..Node.next = y) first n}";
     public specvar content :: objset;
     private vardefs "content == {x. EX n. x = n..Node.data & n : nodes}";
   */
   public boolean empty()
   /*: ensures "result = (content = {})" */
   {
      return (first != null);
   }
}
class Node {
   public /*: claimedby List */ Object data;
   public /*: claimedby List */ Node next;
}
"#;

fn hunt(name: &str, source: &str) {
    println!("── mutant: {name} ──");
    let report = jahob::Config::builder()
        .build_verifier()
        .verify(source)
        .expect("pipeline");
    for m in &report.methods {
        for o in &m.obligations {
            println!("  {}.{} / {:<45} {}", m.class, m.method, o.label, o.verdict);
        }
    }
    let (_, refuted, _) = report.tally();
    assert!(refuted > 0, "the seeded bug must be caught");
    println!("  → bug caught with a concrete counter-model\n");
}

fn main() {
    hunt("add forgets to link the old list", BROKEN_ADD);
    hunt("empty inverts the check", BROKEN_EMPTY);
    println!("Both seeded bugs were refuted by the bounded model finder;");
    println!("every reported counter-model is re-checked by the reference");
    println!("evaluator before being shown (no spurious bug reports).");
}
