//! The Figure 2 client: two lists with disjoint contents, `move()` draining
//! one into the other — verified *modularly* against the List interface
//! (the implementation is not consulted; §2.2's point).
//!
//! ```sh
//! cargo run --release --example list_client
//! ```

fn main() {
    let source =
        std::fs::read_to_string("case_studies/client.javax").expect("run from the repository root");

    let report = jahob::Config::builder()
        .build_verifier()
        .verify(&source)
        .expect("pipeline");
    println!("{report}");

    if let Some(m) = report.method("Client", "move") {
        println!(
            "Client.move {} — the disjointness invariant of Figure 2 is {}.",
            if m.all_proved() {
                "VERIFIED"
            } else {
                "NOT fully verified"
            },
            if m.all_proved() {
                "preserved across the draining loop"
            } else {
                "not yet established (see the obligation list above)"
            }
        );
    }
}
