//! The §3 case study: "annotated and partially verified high-level
//! properties in an implementation of a turn-based strategy game."
//!
//! The combat helpers are `assuming` summaries (specified, not verified);
//! the army/turn protocol is verified against them — the proved/assumed
//! split is printed explicitly.
//!
//! ```sh
//! cargo run --release --example strategy_game
//! ```

fn main() {
    let source =
        std::fs::read_to_string("case_studies/game.javax").expect("run from the repository root");

    let report = jahob::Config::builder()
        .build_verifier()
        .verify(&source)
        .expect("pipeline");
    println!("{report}");

    // The partially-verified split: methods in the report were verified;
    // `assuming` methods were taken as specified.
    let program = jahob_javalite::parse_program(&source).unwrap();
    let assumed: Vec<String> = program
        .classes
        .iter()
        .flat_map(|c| c.methods.iter())
        .filter(|m| m.contract.assumed)
        .map(|m| m.name.to_string())
        .collect();
    println!(
        "partially verified: {} methods proved, {} method(s) assumed as \
         specified: {}",
        report.methods.len(),
        assumed.len(),
        assumed.join(", ")
    );
}
