//! A mini proving CLI: pass a formula in the annotation syntax and watch the
//! dispatcher route it through the portfolio.
//!
//! ```sh
//! cargo run --release --example prove -- 'card (S Un T) <= card S + card T'
//! cargo run --release --example prove -- 'x < y & y < z --> x < z'
//! cargo run --release --example prove -- 'x : S --> x : T'
//! ```

use jahob_logic::parse_form;
use jahob_util::FxHashMap;

fn main() {
    let input: Vec<String> = std::env::args().skip(1).collect();
    let text = if input.is_empty() {
        "card (S Un T) <= card S + card T".to_string()
    } else {
        input.join(" ")
    };
    let goal = match parse_form(&text) {
        Ok(g) => g,
        Err(e) => {
            eprintln!("parse error: {e}");
            std::process::exit(1);
        }
    };
    let dispatcher = jahob::Dispatcher::new(FxHashMap::default(), FxHashMap::default());
    println!("goal: {goal}");
    match dispatcher.prove(&goal) {
        jahob::Verdict::Proved {
            prover,
            bound: None,
        } => {
            println!("PROVED by {prover}");
        }
        jahob::Verdict::Proved {
            prover,
            bound: Some(b),
        } => println!("PROVED by {prover} (validity up to universes of size {b})"),
        jahob::Verdict::CounterModel(model) => {
            println!("REFUTED — counter-model over {} objects:", model.universe);
            let mut keys: Vec<_> = model.interp.keys().collect();
            keys.sort_by_key(|k| k.as_str());
            for k in keys {
                println!("  {k} = {:?}", model.interp[k]);
            }
        }
        jahob::Verdict::Unknown(diag) => println!("UNKNOWN — {diag}"),
    }
    println!("\ndispatcher statistics:\n{}", dispatcher.stats);
}
