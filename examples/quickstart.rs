//! Quickstart: verify the paper's `List` class (Figures 1, 3, 4).
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Parses the annotated Java subset, generates verification conditions for
//! every method, and dispatches each obligation to the prover portfolio,
//! printing the per-obligation report the paper's §2.4 architecture implies.
//!
//! Methods fan out across a worker pool (`JAHOB_WORKERS=8 cargo run ...`,
//! or set `config.workers`) and share a normalized-goal cache; the report
//! is identical at any worker count.

fn main() {
    let source =
        std::fs::read_to_string("case_studies/list.javax").expect("run from the repository root");

    // The builder resolves JAHOB_WORKERS once (default: sequential).
    let verifier = jahob::Config::builder()
        .dispatch(jahob::DispatchConfig {
            bmc_bound: 3,
            ..Default::default()
        })
        .goal_cache(true)
        .build_verifier();

    let started = std::time::Instant::now();
    let report = verifier.verify(&source).expect("pipeline");
    println!("{report}");
    println!(
        "elapsed: {:?} ({} worker(s), {})",
        started.elapsed(),
        verifier.config().effective_workers(),
        cache_summary(&report)
    );

    let (proved, refuted, unknown) = report.tally();
    println!(
        "\nThe List specification machinery of Figures 1/3/4 produced \
         {} obligations: {proved} proved, {refuted} rejected (weak loop \
         invariant in remove — §2.4's \"incorrect loop invariants ... \
         detected and rejected\"), {unknown} unknown.",
        proved + refuted + unknown
    );
}

/// Render the dispatcher's goal-cache counters as a hit-rate.
fn cache_summary(report: &jahob::VerifyReport) -> String {
    let get = |k: &str| report.stats.get(k).copied().unwrap_or(0);
    let (hits, misses) = (get("cache.hit"), get("cache.miss"));
    if hits + misses == 0 {
        return "goal cache off".to_string();
    }
    format!(
        "goal cache: {hits}/{} hits ({:.0}%)",
        hits + misses,
        100.0 * hits as f64 / (hits + misses) as f64
    )
}
