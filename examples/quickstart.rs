//! Quickstart: verify the paper's `List` class (Figures 1, 3, 4).
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Parses the annotated Java subset, generates verification conditions for
//! every method, and dispatches each obligation to the prover portfolio,
//! printing the per-obligation report the paper's §2.4 architecture implies.

fn main() {
    let source =
        std::fs::read_to_string("case_studies/list.javax").expect("run from the repository root");

    let mut config = jahob::Config::default();
    config.dispatch.bmc_bound = 3;

    let started = std::time::Instant::now();
    let report = jahob::verify_source(&source, &config).expect("pipeline");
    println!("{report}");
    println!("elapsed: {:?}", started.elapsed());

    let (proved, refuted, unknown) = report.tally();
    println!(
        "\nThe List specification machinery of Figures 1/3/4 produced \
         {} obligations: {proved} proved, {refuted} rejected (weak loop \
         invariant in remove — §2.4's \"incorrect loop invariants ... \
         detected and rejected\"), {unknown} unknown.",
        proved + refuted + unknown
    );
}
