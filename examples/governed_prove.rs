//! Resource governance demo: the same dispatcher, with and without a
//! per-obligation deadline.
//!
//! A pathological Presburger goal (Cooper's elimination blows up on the
//! coefficient lcm) would run essentially forever ungoverned; under a
//! 1-second deadline it comes back as a diagnosed `unknown`, and the
//! easy sibling goals still prove afterwards.
//!
//! ```sh
//! cargo run --release --example governed_prove
//! ```

use jahob_logic::parse_form;
use jahob_logic::Sort;
use jahob_util::{FxHashMap, Symbol};
use std::time::{Duration, Instant};

const PATHOLOGICAL: &str = "ALL a. EX b. ALL c. EX d. ALL e. EX f1. ALL g1. EX h1. \
     30 * b + 42 * d + 70 * f1 + 105 * h1 = a + c + e + g1 + 1";

fn main() {
    let mut sig: FxHashMap<Symbol, Sort> = FxHashMap::default();
    for (n, s) in [
        ("S", Sort::objset()),
        ("T", Sort::objset()),
        ("i", Sort::Int),
        ("j", Sort::Int),
    ] {
        sig.insert(Symbol::intern(n), s);
    }
    let mut dispatcher = jahob::Dispatcher::new(sig, FxHashMap::default());
    dispatcher.config.obligation_timeout = Some(Duration::from_secs(1));

    let goals = [
        PATHOLOGICAL,
        "i < j --> i + 1 <= j",
        "card (S Un T) <= card S + card T",
    ];
    for text in goals {
        let goal = parse_form(text).expect("parse");
        let start = Instant::now();
        let verdict = dispatcher.prove(&goal);
        let elapsed = start.elapsed();
        let shown = if text.len() > 60 { &text[..60] } else { text };
        println!("[{elapsed:>8.1?}] {shown}");
        match verdict {
            jahob::Verdict::Proved { prover, .. } => println!("           PROVED by {prover}"),
            jahob::Verdict::CounterModel(m) => {
                println!("           REFUTED over {} objects", m.universe)
            }
            jahob::Verdict::Unknown(diag) => println!("           UNKNOWN — {diag}"),
        }
    }
    println!("\ndispatcher statistics:\n{}", dispatcher.stats);
}
