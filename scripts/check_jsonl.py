#!/usr/bin/env python3
"""Schema sanity check for a Jahob observability JSONL stream.

Stdlib only. Usage: scripts/check_jsonl.py <run.jsonl>

Validates that every line is a JSON object carrying a known `type` tag
with that type's required fields, and that the stream's span structure is
well-formed: one run span bracketing everything, method spans that never
nest, obligation spans inside methods, piece spans inside obligations.
Exits non-zero with a line-numbered message on the first violation.
"""

import json
import sys

# type tag -> required fields (beyond "type"). Wall-clock fields
# ("micros", run.start "workers") are optional: deterministic streams
# omit them.
SCHEMA = {
    "run.start": {"methods"},
    "run.end": {"proved", "refuted", "unknown"},
    "method.start": {"index", "name"},
    "method.end": {"index", "error"},
    "obligation.start": {"index", "label", "size"},
    "obligation.end": {"index", "verdict"},
    "piece.start": {"fingerprint", "size"},
    "piece.end": {"verdict"},
    "cache.lookup": {"fingerprint", "hit", "saved_fuel"},
    "cache.evict": {"fingerprint"},
    "attempt": {"prover", "pass", "outcome", "fuel"},
    "breaker": {"prover", "transition"},
    "retry.escalated": {"fuel"},
    "retry.recovered": set(),
    "chaos.injected": {"site", "fault"},
    "chaos.lied": {"prover"},
    "watchdog": {"outcome"},
    "note": {"text"},
    # Persistent-store lifecycle events (emitted at session open/flush,
    # outside the run span — the span checker ignores them).
    # Supervisor lifecycle events. kill/crash/fallback are attempt-scoped
    # and deterministic; spawn/restart/quarantined/heartbeat are
    # schedule-dependent and appear only in unstable streams.
    "supervisor.spawn": {"lane"},
    "supervisor.restart": {"lane"},
    "supervisor.kill": {"lane", "reason"},
    "supervisor.crash": {"lane", "oom"},
    "supervisor.fallback": {"lane"},
    "supervisor.quarantined": {"lane", "crashes"},
    "supervisor.heartbeat": {"lane"},
    # Speculative-racing events (ISSUE 8). Schedule-dependent like the
    # supervisor lifecycle: they bypass the canonical recorder stream and
    # only appear in raw sinks, in wall-clock order.
    "race.start": {"provers"},
    "race.win": {"prover"},
    "race.cancelled": {"prover"},
    "race.rerun": {"prover"},
    "adaptive.load": {"entries"},
    "adaptive.flush": {"entries"},
    # Relevance-slicing events (ISSUE 10). Content-determined, NOT
    # schedule-dependent: the ladder runs inside one obligation's
    # dispatch, so these appear in canonical streams, between piece
    # spans of the same obligation.
    "slice.applied": {"kept", "dropped"},
    "slice.widened": {"rung", "kept"},
    "slice.spurious": {"rung"},
    # Verification-daemon lifecycle events (ISSUE 9). Schedule-dependent:
    # connection threads emit them in wall-clock order, so they appear
    # only in raw daemon sinks — a daemon stream holds one run span per
    # dispatched request, back to back.
    "service.start": {"socket"},
    "service.accept": {"client"},
    "service.submit": {"client", "queued"},
    "service.busy": {"client", "queued"},
    "service.done": {"client", "outcome"},
    "service.disconnect": {"client"},
    "service.drain": {"queued"},
    "store.open": {"entries", "segments", "lock"},
    "store.load": {"entries"},
    "store.flush": {"records", "bytes"},
    "store.recovered": {"dropped"},
    "store.quarantined": {"segments"},
    "store.lock": {"state"},
    "store.error": {"op", "error"},
    "sink.error": {"error"},
}


def fail(lineno, message):
    print(f"{sys.argv[1]}:{lineno}: {message}", file=sys.stderr)
    sys.exit(1)


def main():
    if len(sys.argv) != 2:
        print(__doc__, file=sys.stderr)
        sys.exit(2)

    in_run = in_method = in_obligation = in_piece = False
    counts = {}
    with open(sys.argv[1], encoding="utf-8") as stream:
        lineno = 0
        for lineno, line in enumerate(stream, start=1):
            try:
                event = json.loads(line)
            except json.JSONDecodeError as e:
                fail(lineno, f"not valid JSON: {e}")
            if not isinstance(event, dict):
                fail(lineno, "event is not a JSON object")
            kind = event.get("type")
            if kind not in SCHEMA:
                fail(lineno, f"unknown event type {kind!r}")
            missing = SCHEMA[kind] - event.keys()
            if missing:
                fail(lineno, f"{kind} missing fields {sorted(missing)}")
            counts[kind] = counts.get(kind, 0) + 1

            if kind == "run.start":
                if in_run:
                    fail(lineno, "nested run.start")
                in_run = True
            elif kind == "run.end":
                if not in_run or in_method:
                    fail(lineno, "run.end outside a clean run span")
                in_run = False
            elif kind == "method.start":
                if not in_run or in_method:
                    fail(lineno, "method.start misnested")
                in_method = True
            elif kind == "method.end":
                if not in_method or in_obligation:
                    fail(lineno, "method.end misnested")
                in_method = False
            elif kind == "obligation.start":
                if not in_method or in_obligation:
                    fail(lineno, "obligation.start misnested")
                in_obligation = True
            elif kind == "obligation.end":
                if not in_obligation or in_piece:
                    fail(lineno, "obligation.end misnested")
                in_obligation = False
            elif kind == "piece.start":
                if not in_obligation or in_piece:
                    fail(lineno, "piece.start misnested")
                in_piece = True
            elif kind == "piece.end":
                if not in_piece:
                    fail(lineno, "piece.end without piece.start")
                in_piece = False

    if lineno == 0:
        fail(0, "empty stream")
    if in_run or in_method or in_obligation or in_piece:
        fail(lineno, "stream ended with an open span")
    starts, ends = counts.get("run.start", 0), counts.get("run.end", 0)
    if any(k.startswith("service.") for k in counts):
        # A daemon stream: one balanced run span per dispatched request
        # (zero is fine — a daemon may drain without ever verifying).
        if starts != ends:
            fail(lineno, "daemon stream has unbalanced run spans")
    elif starts != 1 or ends != 1:
        fail(lineno, "stream must contain exactly one run span")

    summary = ", ".join(f"{k}×{v}" for k, v in sorted(counts.items()))
    print(f"ok: {lineno} events ({summary})")


if __name__ == "__main__":
    main()
