#!/usr/bin/env python3
"""Unit tests for check_jsonl.py (ISSUE 8: test the test tooling).

Stdlib only. Run with:

    python3 -m unittest scripts.test_check_jsonl
    python3 scripts/test_check_jsonl.py

Each test feeds the checker a small accept/reject fixture per event
family — including the speculative-racing events — and asserts the exit
status and, on rejection, that the diagnostic names the offending line.
The checker is exercised through its real entry point (a subprocess with
a file argument), exactly as CI invokes it.
"""

import json
import os
import subprocess
import sys
import tempfile
import unittest

CHECKER = os.path.join(os.path.dirname(os.path.abspath(__file__)), "check_jsonl.py")


def run_checker(lines):
    """Run check_jsonl.py over the given event lines; return the process."""
    with tempfile.NamedTemporaryFile(
        "w", suffix=".jsonl", delete=False, encoding="utf-8"
    ) as f:
        for line in lines:
            f.write(line if isinstance(line, str) else json.dumps(line))
            f.write("\n")
        path = f.name
    try:
        return subprocess.run(
            [sys.executable, CHECKER, path],
            capture_output=True,
            text=True,
            check=False,
        )
    finally:
        os.unlink(path)


def run_span(*inner):
    """A minimal well-formed stream wrapping `inner` events in a run span."""
    return [
        {"type": "run.start", "methods": 1},
        *inner,
        {"type": "run.end", "proved": 1, "refuted": 0, "unknown": 0},
    ]


def method_span(*inner):
    return [
        {"type": "method.start", "index": 0, "name": "C.m"},
        *inner,
        {"type": "method.end", "index": 0, "error": None},
    ]


class AcceptsWellFormedStreams(unittest.TestCase):
    def assert_ok(self, lines):
        proc = run_checker(lines)
        self.assertEqual(proc.returncode, 0, msg=proc.stderr)
        self.assertIn("ok:", proc.stdout)

    def test_minimal_run_span(self):
        self.assert_ok(run_span())

    def test_full_nesting(self):
        self.assert_ok(
            run_span(
                *method_span(
                    {"type": "obligation.start", "index": 0, "label": "ensures", "size": 9},
                    {"type": "piece.start", "fingerprint": 1, "size": 4},
                    {
                        "type": "attempt",
                        "prover": "hol-auto",
                        "pass": "first",
                        "outcome": "proved",
                        "fuel": 0,
                    },
                    {"type": "piece.end", "verdict": "proved"},
                    {"type": "obligation.end", "index": 0, "verdict": "proved"},
                )
            )
        )

    def test_race_events_accepted(self):
        # Race events are raw-sink residents: they may appear anywhere,
        # including interleaved with span structure, in wall-clock order.
        self.assert_ok(
            [
                {"type": "adaptive.load", "entries": 3},
                {"type": "race.start", "provers": 5},
                {"type": "race.win", "prover": "presburger"},
                {"type": "race.cancelled", "prover": "fol-resolution"},
                {"type": "race.rerun", "prover": "fol-resolution"},
                *run_span(),
                {"type": "adaptive.flush", "entries": 4},
            ]
        )

    def test_supervisor_and_store_events_accepted(self):
        self.assert_ok(
            [
                {"type": "store.open", "entries": 0, "segments": 1, "lock": "held"},
                *run_span(
                    {"type": "supervisor.kill", "lane": "bapa", "reason": "deadline"},
                    {"type": "supervisor.crash", "lane": "bapa", "oom": False},
                    {"type": "supervisor.fallback", "lane": "bapa"},
                ),
                {"type": "store.flush", "records": 2, "bytes": 96},
            ]
        )

    def test_slice_events_accepted_inside_an_obligation(self):
        # Slice events are canonical residents of the obligation span:
        # `applied` before the first rung's piece span, `spurious` and
        # `widened` between rung dispatches.
        self.assert_ok(
            run_span(
                *method_span(
                    {"type": "obligation.start", "index": 0, "label": "ensures", "size": 9},
                    {"type": "slice.applied", "kept": 1, "dropped": 2},
                    {"type": "piece.start", "fingerprint": 1, "size": 2},
                    {"type": "piece.end", "verdict": "counter-model"},
                    {"type": "slice.spurious", "rung": 1},
                    {"type": "slice.widened", "rung": 2, "kept": 2},
                    {"type": "piece.start", "fingerprint": 2, "size": 5},
                    {"type": "piece.end", "verdict": "proved"},
                    {"type": "obligation.end", "index": 0, "verdict": "proved"},
                )
            )
        )

    def test_wall_clock_fields_are_optional(self):
        # No `micros` anywhere: the deterministic serialization omits it.
        self.assert_ok(run_span(*method_span()))

    def test_daemon_stream_holds_one_run_span_per_request(self):
        # A daemon stream: service lifecycle events around back-to-back
        # run spans, one per dispatched request.
        self.assert_ok(
            [
                {"type": "service.start", "socket": "/tmp/jahob.sock"},
                {"type": "service.accept", "client": 1},
                {"type": "service.submit", "client": 1, "queued": 1},
                *run_span(),
                {"type": "service.done", "client": 1, "outcome": "verified"},
                {"type": "service.submit", "client": 1, "queued": 1},
                *run_span(),
                {"type": "service.done", "client": 1, "outcome": "verified"},
                {"type": "service.busy", "client": 2, "queued": 1},
                {"type": "service.disconnect", "client": 1},
                {"type": "service.drain", "queued": 0},
            ]
        )

    def test_daemon_stream_may_never_verify(self):
        # A daemon that drains before any submission still checks out.
        self.assert_ok(
            [
                {"type": "service.start", "socket": "/tmp/jahob.sock"},
                {"type": "service.drain", "queued": 0},
            ]
        )


class RejectsMalformedStreams(unittest.TestCase):
    def assert_rejected(self, lines, expect, lineno=None):
        proc = run_checker(lines)
        self.assertNotEqual(proc.returncode, 0, msg=proc.stdout)
        self.assertIn(expect, proc.stderr)
        if lineno is not None:
            self.assertIn(f":{lineno}:", proc.stderr)

    def test_invalid_json(self):
        self.assert_rejected(["{nope"], "not valid JSON", lineno=1)

    def test_non_object_event(self):
        self.assert_rejected(["[1, 2]"], "not a JSON object")

    def test_unknown_event_type(self):
        self.assert_rejected(run_span({"type": "race.telemetry"}), "unknown event type")

    def test_race_start_missing_provers(self):
        self.assert_rejected(
            [{"type": "race.start"}, *run_span()],
            "race.start missing fields ['provers']",
            lineno=1,
        )

    def test_race_win_missing_prover(self):
        self.assert_rejected(
            [{"type": "race.win"}, *run_span()],
            "race.win missing fields ['prover']",
        )

    def test_adaptive_flush_missing_entries(self):
        self.assert_rejected(
            [*run_span(), {"type": "adaptive.flush"}],
            "adaptive.flush missing fields ['entries']",
        )

    def test_attempt_missing_fields(self):
        self.assert_rejected(
            run_span(
                *method_span(
                    {"type": "obligation.start", "index": 0, "label": "l", "size": 1},
                    {"type": "piece.start", "fingerprint": 1, "size": 1},
                    {"type": "attempt", "prover": "hol-auto"},
                    {"type": "piece.end", "verdict": "proved"},
                    {"type": "obligation.end", "index": 0, "verdict": "proved"},
                )
            ),
            "attempt missing fields",
        )

    def test_nested_run_span(self):
        self.assert_rejected(
            [{"type": "run.start", "methods": 1}, *run_span()],
            "nested run.start",
        )

    def test_method_outside_run(self):
        self.assert_rejected(
            [*method_span(), *run_span()],
            "method.start misnested",
            lineno=1,
        )

    def test_obligation_outside_method(self):
        self.assert_rejected(
            run_span({"type": "obligation.start", "index": 0, "label": "l", "size": 1}),
            "obligation.start misnested",
        )

    def test_piece_end_without_start(self):
        self.assert_rejected(
            run_span(*method_span({"type": "piece.end", "verdict": "proved"})),
            "piece.end without piece.start",
        )

    def test_unclosed_span(self):
        self.assert_rejected(
            [{"type": "run.start", "methods": 1}],
            "ended with an open span",
        )

    def test_empty_stream(self):
        self.assert_rejected([], "empty stream")

    def test_two_run_spans(self):
        self.assert_rejected(
            [*run_span(), *run_span()],
            "exactly one run span",
        )

    def test_slice_applied_missing_kept(self):
        self.assert_rejected(
            [{"type": "slice.applied", "dropped": 2}, *run_span()],
            "slice.applied missing fields ['kept']",
            lineno=1,
        )

    def test_slice_widened_missing_rung(self):
        self.assert_rejected(
            [{"type": "slice.widened", "kept": 1}, *run_span()],
            "slice.widened missing fields ['rung']",
        )

    def test_slice_spurious_missing_rung(self):
        self.assert_rejected(
            [{"type": "slice.spurious"}, *run_span()],
            "slice.spurious missing fields ['rung']",
        )

    def test_service_submit_missing_queued(self):
        self.assert_rejected(
            [{"type": "service.submit", "client": 1}, *run_span()],
            "service.submit missing fields ['queued']",
            lineno=1,
        )

    def test_daemon_stream_with_torn_run_span(self):
        # Even for a daemon, spans must balance: a run.start whose
        # run.end never arrived means the stream is truncated.
        self.assert_rejected(
            [
                {"type": "service.start", "socket": "/tmp/jahob.sock"},
                *run_span(),
                {"type": "run.start", "methods": 1},
            ],
            "ended with an open span",
        )


class ChecksARealRacingStream(unittest.TestCase):
    """End-to-end: a stream captured from an actual racing run (when the
    release binary exists) passes the checker. Skipped if the binary has
    not been built — CI builds it first."""

    def test_real_stream_if_binary_present(self):
        repo = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        binary = os.path.join(repo, "target", "release", "jahob")
        fixture = os.path.join(repo, "case_studies", "globalset.javax")
        if not (os.path.exists(binary) and os.path.exists(fixture)):
            self.skipTest("release binary not built")
        with tempfile.NamedTemporaryFile(suffix=".jsonl", delete=False) as f:
            obs_path = f.name
        try:
            env = dict(os.environ, JAHOB_OBS=obs_path)
            subprocess.run(
                [binary, "--racing", "--adaptive", fixture],
                capture_output=True,
                env=env,
                check=True,
            )
            proc = subprocess.run(
                [sys.executable, CHECKER, obs_path],
                capture_output=True,
                text=True,
                check=False,
            )
            self.assertEqual(proc.returncode, 0, msg=proc.stderr)
            self.assertIn("race.start", proc.stdout)
        finally:
            os.unlink(obs_path)


if __name__ == "__main__":
    unittest.main()
