#!/usr/bin/env bash
# Crash-recovery matrix for the persistent proof store (ISSUE 6).
#
# Populates a cache directory with one clean run of the CLI, then mangles
# it the way crashes and bad disks do — torn segment tail, flipped byte,
# deleted manifest, garbage segment, orphaned tmp file, stale lock — and
# asserts after every mutation that the next run (a) exits 0, (b) reports
# exactly the baseline verdicts, and (c) leaves the directory reopenable
# for one more clean round-trip.
#
# Usage: scripts/crash_matrix.sh [path-to-verify_file-binary]
# Defaults to target/release/examples/verify_file.
set -euo pipefail

cd "$(dirname "$0")/.."
BIN="${1:-target/release/examples/verify_file}"
if [ ! -x "$BIN" ]; then
  echo "FAIL: verifier binary not found or not executable: $BIN" >&2
  echo "hint: build it with \`cargo build --release -p jahob --example verify_file\`" >&2
  echo "      or pass an explicit path: scripts/crash_matrix.sh <binary>" >&2
  exit 2
fi
SRC="case_studies/list.javax"
WORK="$(mktemp -d "${TMPDIR:-/tmp}/jahob-crash-matrix.XXXXXX")"
trap 'rm -rf "$WORK"' EXIT

run() { # run <cache-dir> <report-out>
  # Keep only the per-method verdicts: run-wide stats legitimately differ
  # between cold and warm runs (cache hits vs fresh proofs); the verdicts
  # never may.
  JAHOB_CACHE="$1" "$BIN" --json "$SRC" \
    | python3 -c 'import json,sys; json.dump(json.load(sys.stdin)["methods"], sys.stdout, indent=1)' \
    > "$2"
}

segment() { # newest segment file in the cache dir
  ls "$CACHE"/seg-*.log | sort | tail -n 1
}

check() { # check <case-name>
  local name="$1"
  run "$CACHE" "$WORK/after-$name.json"
  cmp "$WORK/baseline.json" "$WORK/after-$name.json" \
    || { echo "FAIL [$name]: verdicts changed after corruption" >&2; exit 1; }
  # The directory must have healed: one more clean round-trip.
  run "$CACHE" "$WORK/again-$name.json"
  cmp "$WORK/baseline.json" "$WORK/again-$name.json" \
    || { echo "FAIL [$name]: directory did not stay reopenable" >&2; exit 1; }
  echo "ok [$name]"
}

repopulate() {
  rm -rf "$CACHE"
  run "$CACHE" "$WORK/repopulate.json"
  cmp "$WORK/baseline.json" "$WORK/repopulate.json"
}

CACHE="$WORK/cache"
run "$CACHE" "$WORK/baseline.json"
[ -f "$CACHE/MANIFEST" ] || { echo "FAIL: populate left no MANIFEST" >&2; exit 1; }
ls "$CACHE"/seg-*.log > /dev/null || { echo "FAIL: populate left no segments" >&2; exit 1; }

# 1. Torn tail: a crash mid-append leaves a half-written record.
SEG="$(segment)"
SIZE="$(wc -c < "$SEG")"
truncate -s "$(( 8 + (SIZE - 8) / 2 ))" "$SEG"
check torn-tail

# 2. Bit rot: one flipped byte mid-segment, caught by the record CRC.
repopulate
SEG="$(segment)"
SIZE="$(wc -c < "$SEG")"
printf '\xff' | dd of="$SEG" bs=1 seek="$(( SIZE / 2 ))" conv=notrunc status=none
check bit-flip

# 3. Lost manifest: the store must reset to cold, not guess.
repopulate
rm "$CACHE/MANIFEST"
check lost-manifest

# 4. Garbage segment: quarantined to *.corrupt, never replayed.
repopulate
SEG="$(segment)"
head -c 64 /dev/urandom > "$SEG"
check garbage-segment
ls "$CACHE"/*.corrupt > /dev/null 2>&1 || echo "note [garbage-segment]: no quarantine file (reset path)"

# 5. Orphaned tmp file: a crash between write and rename.
repopulate
head -c 32 /dev/urandom > "$CACHE/seg-99999999.log.tmp"
check orphan-tmp

# 6. Stale lock: a dead process's PID in LOCK must be taken over.
repopulate
echo 999999999 > "$CACHE/LOCK"
check stale-lock

echo "crash matrix: all cases recovered with baseline verdicts"
