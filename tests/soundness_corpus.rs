//! Soundness regression corpus (ISSUE 8): deliberately broken case-study
//! variants that must never verify, under any dispatch strategy.
//!
//! Speculative racing, adaptive ordering, process isolation, and chaos
//! cancellation all reshuffle *when* and *where* provers run — none of
//! them may ever reshuffle *what is true*. Each `*_bug.javax` fixture
//! seeds a specific bug (see the fixture headers); this suite pins that
//! the broken methods' `ensures` obligations stay un-`Proved` across:
//!
//! * the sequential baseline;
//! * racing and racing+adaptive at 1/2/8 workers;
//! * both isolation modes (in-process and supervised child processes);
//! * 48 chaos seeds — fault-plan seeds (under which racing stands down
//!   by design and the faults batter the sequential path) and
//!   `race_cancel_seed` sweeps (under which races fire and lose racers
//!   to injected pre-cancellation, exercising the inline re-run path).

use jahob_repro::jahob::{self, verify::VerdictSummary, Config, FaultPlan, Isolation, Verifier};
use std::sync::Arc;

/// The worker binary for process isolation: this workspace's own `jahob`
/// CLI, whose hidden `worker` subcommand is the supervisor's child half.
const WORKER_BIN: &str = env!("CARGO_BIN_EXE_jahob");

const WORKER_MATRIX: [usize; 3] = [1, 2, 8];

/// Every seeded bug in the corpus: fixture path plus the methods whose
/// `ensures` obligation is deliberately false.
const CORPUS: [(&str, &[(&str, &str)]); 2] = [
    (
        "case_studies/list_bug.javax",
        &[("List", "add"), ("List", "empty")],
    ),
    (
        "case_studies/globalset_bug.javax",
        &[("GlobalCounter", "inc"), ("GlobalSet", "push")],
    ),
];

fn fixture(path: &str) -> String {
    std::fs::read_to_string(path).unwrap_or_else(|e| panic!("{path}: {e}"))
}

/// Assert the seeded bugs stayed unproved: each broken method's `ensures`
/// obligation must be `Refuted` or `Unknown` — anything `Proved` is a
/// soundness hole in whatever dispatch strategy produced the report.
fn assert_bugs_unproved(report: &jahob::VerifyReport, broken: &[(&str, &str)], mode: &str) {
    for &(class, method) in broken {
        let m = report
            .method(class, method)
            .unwrap_or_else(|| panic!("{mode}: {class}.{method} missing from report"));
        let ensures = m
            .obligations
            .iter()
            .find(|o| o.label.contains("ensures"))
            .unwrap_or_else(|| panic!("{mode}: {class}.{method} has no ensures obligation"));
        assert!(
            !matches!(ensures.verdict, VerdictSummary::Proved { .. }),
            "{mode}: seeded bug {class}.{method} was PROVED — soundness hole:\n{report}"
        );
    }
}

fn run(src: &str, config: Config) -> jahob::VerifyReport {
    Verifier::new(config).verify(src).expect("pipeline")
}

#[test]
fn sequential_baseline_never_proves_broken_methods() {
    for (path, broken) in CORPUS {
        let report = run(&fixture(path), Config::default());
        assert_bugs_unproved(&report, broken, &format!("{path} sequential"));
    }
}

#[test]
fn racing_and_adaptive_never_prove_broken_methods() {
    for (path, broken) in CORPUS {
        let src = fixture(path);
        for workers in WORKER_MATRIX {
            for adaptive in [false, true] {
                let config = Config::builder()
                    .racing(true)
                    .adaptive(adaptive)
                    .workers(workers)
                    .build();
                let report = run(&src, config);
                assert_bugs_unproved(
                    &report,
                    broken,
                    &format!("{path} racing workers={workers} adaptive={adaptive}"),
                );
            }
        }
    }
}

/// Racing must actually engage on the corpus — a soundness suite whose
/// racing leg silently falls back to sequential dispatch tests nothing.
#[test]
fn racing_engages_on_the_corpus() {
    let report = run(
        &fixture("case_studies/globalset_bug.javax"),
        Config::builder().racing(true).build(),
    );
    let starts = report.stats.get("race.start").copied().unwrap_or(0);
    assert!(starts > 0, "racing never fired on the corpus:\n{report:?}");
}

#[test]
fn isolation_modes_never_prove_broken_methods() {
    for (path, broken) in CORPUS {
        let src = fixture(path);
        for isolation in [Isolation::InProcess, Isolation::Process] {
            let config = Config::builder()
                .racing(true)
                .isolation(isolation)
                .worker_program(WORKER_BIN)
                .build();
            let report = run(&src, config);
            assert_bugs_unproved(&report, broken, &format!("{path} isolation={isolation:?}"));
        }
    }
}

/// Fault-plan chaos: seeds 0..24. Racing is requested but stands down
/// under an armed plan (by design — racer threads cannot see the
/// per-obligation fault scopes), so this leg batters the sequential path
/// the race would fall back to. The cross-check watchdog is on, exactly
/// as in the chaos suite: lying-prover faults are only defeated by
/// cross-checking, and an unwatched lie flipping a verdict is the known,
/// documented threat — not a racing regression.
#[test]
fn fault_plan_seeds_never_prove_broken_methods() {
    let src = fixture("case_studies/globalset_bug.javax");
    let broken = CORPUS[1].1;
    for seed in 0..24u64 {
        let mut config = Config::builder()
            .racing(true)
            .fault_plan(Arc::new(FaultPlan::from_seed(seed)))
            .build();
        config.dispatch.cross_check = true;
        let report = run(&src, config);
        assert_bugs_unproved(&report, broken, &format!("fault-plan seed={seed}"));
    }
}

/// Race-cancellation chaos: seeds 0..24 on the fast fixture plus a
/// spot-check on the list fixture. Races fire and racers are spuriously
/// pre-cancelled by seed; cancelled racers re-run inline (`race.rerun`),
/// so verdicts — and in particular the seeded bugs — must be untouched.
#[test]
fn race_cancel_seeds_never_prove_broken_methods() {
    let baseline = run(
        &fixture("case_studies/globalset_bug.javax"),
        Config::default(),
    )
    .deterministic_lines();
    for seed in 0..24u64 {
        let mut config = Config::builder().racing(true).build();
        config.dispatch.race_cancel_seed = Some(seed);
        let report = run(&fixture("case_studies/globalset_bug.javax"), config);
        assert_bugs_unproved(&report, CORPUS[1].1, &format!("race-cancel seed={seed}"));
        // Stronger than "not proved": injected cancellation must not
        // perturb the deterministic report at all.
        assert_eq!(
            report.deterministic_lines(),
            baseline,
            "race-cancel seed={seed} drifted from the sequential baseline"
        );
    }
    for seed in [0u64, 7, 23] {
        let mut config = Config::builder().racing(true).build();
        config.dispatch.race_cancel_seed = Some(seed);
        let report = run(&fixture("case_studies/list_bug.javax"), config);
        assert_bugs_unproved(
            &report,
            CORPUS[0].1,
            &format!("list race-cancel seed={seed}"),
        );
    }
}
