//! Cross-crate differential tests: the provers must agree with each other
//! and with the reference model evaluator on overlapping fragments.

use jahob_repro::logic::model::enumerate_models;
use jahob_repro::logic::{form, Sort};
use jahob_repro::util::{FxHashMap, Symbol};

fn sig() -> FxHashMap<Symbol, Sort> {
    [
        ("S", Sort::objset()),
        ("T", Sort::objset()),
        ("U", Sort::objset()),
        ("x", Sort::Obj),
        ("y", Sort::Obj),
    ]
    .iter()
    .map(|(n, s)| (Symbol::intern(n), s.clone()))
    .collect()
}

/// BAPA vs the bounded model finder vs exhaustive small models, on pure set
/// goals where a counter-example (if any) exists at universe ≤ 2.
#[test]
fn bapa_bmc_and_models_agree() {
    let goals = [
        ("S Int T <= S", true),
        ("S <= S Un T", true),
        ("S Un T <= S Int T", false),
        ("x : S & S <= T --> x : T", true),
        ("x : S | x : T --> x : S", false),
        ("S - T <= S", true),
        ("S Int T = {} & x : S --> x ~: T", true),
    ];
    let s = sig();
    let syms: Vec<(Symbol, Sort)> = s.iter().map(|(k, v)| (*k, v.clone())).collect();
    for (src, expected) in goals {
        let goal = form(src);
        // BAPA.
        assert_eq!(
            jahob_repro::bapa::bapa_valid(&goal, &s),
            Ok(expected),
            "bapa on {src}"
        );
        // Bounded model finder.
        let bmc = jahob_repro::models::refute(&goal, &s, 2).unwrap();
        assert_eq!(bmc.is_none(), expected, "bmc on {src}");
        // Exhaustive enumeration (the semantics).
        let all = enumerate_models(2, (0, 0), &syms, &mut |m| m.eval_bool(&goal).unwrap());
        assert_eq!(all, expected, "enumeration on {src}");
    }
}

/// The SMT core and the FOL prover agree on ground EUF goals.
#[test]
fn smt_and_fol_agree_on_euf() {
    let goals = [
        ("x = y --> f x = f y", true),
        ("f x = f y --> x = y", false),
        ("x = y & y = z --> f (f x) = f (f z)", true),
    ];
    let empty = FxHashMap::default();
    for (src, expected) in goals {
        let goal = form(src);
        assert_eq!(
            jahob_repro::smt::smt_valid(&goal, &empty),
            Ok(expected),
            "smt on {src}"
        );
        let fol = jahob_repro::fol::fol_valid(&goal, &empty).unwrap();
        if expected {
            assert!(fol, "fol must prove {src}");
        }
        // (fol returning false on invalid goals is give-up, not refutation.)
    }
}

/// Presburger (Cooper) agrees with the SMT core's LIA side on ground goals.
#[test]
fn cooper_and_smt_agree_on_lia() {
    let goals = [
        ("i < j --> i + 1 <= j", true),
        ("i <= j & j <= i --> i = j", true),
        ("i <= j --> i < j", false),
        ("2 * i ~= 2 * j + 1", true),
    ];
    let mut s = FxHashMap::default();
    s.insert(Symbol::intern("i"), Sort::Int);
    s.insert(Symbol::intern("j"), Sort::Int);
    for (src, expected) in goals {
        let goal = form(src);
        assert_eq!(
            jahob_repro::presburger::translate::decide_valid(&goal),
            Ok(expected),
            "cooper on {src}"
        );
        assert_eq!(
            jahob_repro::smt::smt_valid(&goal, &s),
            Ok(expected),
            "smt on {src}"
        );
    }
}

/// The WS1S engine agrees with set-algebra facts provable by BAPA when both
/// can express them (subset transitivity etc.).
#[test]
fn ws1s_agrees_with_bapa_on_set_facts() {
    use jahob_repro::mona::ws1s::{decide, WsForm, WsVerdict};
    let s = |n: &str| Symbol::intern(n);
    // X ⊆ Y ∧ Y ⊆ Z → X ⊆ Z: valid in WS1S...
    let ws = WsForm::All2(
        vec![s("WX"), s("WY"), s("WZ")],
        Box::new(WsForm::implies(
            WsForm::and(vec![
                WsForm::Sub(s("WX"), s("WY")),
                WsForm::Sub(s("WY"), s("WZ")),
            ]),
            WsForm::Sub(s("WX"), s("WZ")),
        )),
    );
    assert!(matches!(decide(&ws).unwrap(), WsVerdict::Valid));
    // ...and in BAPA.
    assert_eq!(
        jahob_repro::bapa::bapa_valid(&form("S <= T & T <= U --> S <= U"), &sig()),
        Ok(true)
    );
}

/// The full pipeline on a one-file program exercises every layer at once.
#[test]
fn pipeline_smoke() {
    let src = r#"
class K {
  /*: public static specvar total :: int; */
  public static void add2()
  /*: requires "0 <= total" modifies total ensures "total = old total + 2" */
  {
    //: total := "total + 1";
    //: noteThat "1 <= total";
    //: total := "total + 1";
  }
}
"#;
    let report = jahob_repro::jahob::Verifier::new(Default::default())
        .verify(src)
        .unwrap();
    assert!(report.all_proved(), "{report}");
}
