//! Out-of-process prover supervision (ISSUE 7).
//!
//! These tests drive the real child-process path: the supervisor
//! re-execs the `jahob` binary (hidden `worker` mode) and polices it
//! with hard deadlines, memory ceilings, and crash-loop quarantine.
//! Four pins:
//!
//! * **Graceful degradation.** Every injected IPC fault — hung child,
//!   killed child, OOM'd child, garbled reply frame, slow heartbeat —
//!   degrades to a diagnosed failure or an in-process fallback. Verdicts
//!   are bit-for-bit identical to the clean in-process run, always.
//! * **Crash-loop quarantine.** A lane that keeps dying is condemned
//!   after the crash threshold; the run completes in-process with
//!   identical verdicts and the quarantine is surfaced in the report.
//! * **Deterministic streams.** The canonical event stream of a run with
//!   a hung prover is bit-for-bit identical at 1, 2, and 8 workers, and
//!   is pinned as golden JSONL under `tests/golden/`. Regenerate with:
//!
//!   ```text
//!   JAHOB_BLESS=1 cargo test --test supervision
//!   ```
//!
//! * **Codec integrity.** Property tests: IPC frames round-trip, and no
//!   truncation or single-bit corruption ever parses back.

use jahob_repro::jahob::{
    self, Config, Event, Fault, FaultPlan, Isolation, ProverId, ReportRender,
};
use jahob_repro::util::ipc::{read_frame, write_frame, Frame, DEFAULT_MAX_FRAME};
use jahob_repro::util::obs::MemorySink;
use jahob_repro::util::IpcFault;
use proptest::prelude::*;
use std::sync::Arc;
use std::time::Duration;

/// The worker binary: this workspace's own `jahob` CLI, whose hidden
/// `worker` subcommand is the supervisor's child half.
const WORKER_BIN: &str = env!("CARGO_BIN_EXE_jahob");

const WORKER_MATRIX: [usize; 3] = [1, 2, 8];

fn fixture(name: &str) -> String {
    std::fs::read_to_string(format!("case_studies/{name}.javax")).expect("case study")
}

/// A targeted plan injecting `fault` at every arrival of BAPA's
/// supervision boundary. BAPA is the designated victim because the case
/// studies try it on many obligations and it never supplies the proof —
/// so torturing its lane exercises the whole failure path while leaving
/// every verdict to be decided exactly as in a clean run.
fn bapa_plan(fault: IpcFault) -> Arc<FaultPlan> {
    Arc::new(FaultPlan::quiet().inject(
        ProverId::Bapa.supervisor_site(),
        0..u64::MAX,
        Fault::Ipc(fault),
    ))
}

/// Build a process-isolation verifier over this workspace's own binary.
fn process_builder(
    plan: Option<Arc<FaultPlan>>,
    deadline: Duration,
    workers: usize,
) -> jahob::ConfigBuilder {
    let mut builder = Config::builder()
        .workers(workers)
        .isolation(Isolation::Process)
        .worker_program(WORKER_BIN)
        .worker_deadline(deadline);
    if let Some(plan) = plan {
        builder = builder.fault_plan(plan);
    }
    builder
}

/// The schedule-independent verdict view: methods, obligations, and
/// verdicts — with the stat lines dropped, since injected faults
/// legitimately add `failure.*` counters that a clean run lacks.
fn verdict_lines(report: &jahob::VerifyReport) -> Vec<String> {
    report
        .deterministic_lines()
        .into_iter()
        .filter(|line| !line.starts_with("stat "))
        .collect()
}

fn stat(report: &jahob::VerifyReport, name: &str) -> u64 {
    report.stats.get(name).copied().unwrap_or(0)
}

// ---- graceful degradation across the whole fault matrix -----------------

#[test]
fn fault_matrix_degrades_gracefully_and_verdicts_never_change() {
    let src = fixture("globalset");
    let clean = Config::builder()
        .workers(1)
        .isolation(Isolation::InProcess)
        .build_verifier()
        .verify(&src)
        .expect("clean baseline");
    assert!(clean.all_proved(), "fixture must verify cleanly");
    let baseline = verdict_lines(&clean);

    // (fault, hard deadline, counters that must move). The hung-child
    // deadline is short so the test doesn't sit out three full kills;
    // the rest fail fast on their own.
    let matrix: [(IpcFault, u64, &[&str]); 5] = [
        (
            IpcFault::HungChild,
            300,
            &["supervisor.kill", "failure.bapa.timeout"],
        ),
        (
            IpcFault::KilledChild,
            5_000,
            &["supervisor.crash", "supervisor.fallback"],
        ),
        (
            IpcFault::OomChild,
            5_000,
            &["supervisor.crash.oom", "failure.bapa.resource-exceeded"],
        ),
        (
            IpcFault::GarbledFrame,
            5_000,
            &["supervisor.crash", "supervisor.fallback"],
        ),
        (
            IpcFault::SlowHeartbeat,
            5_000,
            &["supervisor.heartbeat.late"],
        ),
    ];
    for (fault, deadline_ms, want) in matrix {
        let mut builder = process_builder(
            Some(bapa_plan(fault)),
            Duration::from_millis(deadline_ms),
            1,
        );
        if fault == IpcFault::OomChild {
            // The OOM chaos allocates until the ceiling bites; give the
            // child one so the death reads as a resource kill, not a
            // plain crash.
            builder = builder.worker_memory(256 << 20);
        }
        let report = builder.build_verifier().verify(&src).expect("pipeline");
        assert_eq!(
            verdict_lines(&report),
            baseline,
            "verdicts changed under {fault}"
        );
        for name in want {
            assert!(
                stat(&report, name) > 0,
                "{fault}: expected stat {name} to move; stats: {:?}",
                report.stats
            );
        }
    }
}

// ---- crash-loop quarantine and in-process fallback ----------------------

#[test]
fn crash_loop_quarantines_the_lane_and_the_run_completes_in_process() {
    let src = fixture("assoclist");
    let clean = Config::builder()
        .workers(1)
        .isolation(Isolation::InProcess)
        .build_verifier()
        .verify(&src)
        .expect("clean baseline");
    let baseline = verdict_lines(&clean);

    // Every BAPA request dies. After the crash threshold the supervisor
    // condemns the lane; the remaining attempts run in-process.
    let report = process_builder(
        Some(bapa_plan(IpcFault::KilledChild)),
        Duration::from_secs(5),
        1,
    )
    .build_verifier()
    .verify(&src)
    .expect("pipeline");

    assert_eq!(
        verdict_lines(&report),
        baseline,
        "quarantine fallback changed a verdict"
    );
    assert_eq!(
        report.quarantined,
        vec!["bapa".to_owned()],
        "the crash-looping lane must be quarantined in the report"
    );
    assert!(stat(&report, "supervisor.quarantined") > 0);
    assert!(
        stat(&report, "supervisor.crash") >= 3,
        "quarantine needs the crash threshold; stats: {:?}",
        report.stats
    );
    assert!(
        report.to_string().contains("quarantined"),
        "the human-readable report must surface the degradation"
    );
    // The stable JSON stays schedule-independent (quarantine timing is
    // not), but the timing JSON carries the lane.
    assert!(!report.to_json(ReportRender::STABLE).contains("quarantined"));
    assert!(report.to_json(ReportRender::TIMING).contains("\"bapa\""));
}

// ---- deterministic canonical stream under a hung child ------------------

/// The canonical (recorder-borne, schedule-independent) slice of the
/// stream: everything except the supervisor's own lane-lifecycle events,
/// which are emitted directly to the sink as they happen — spawn and
/// restart timing legitimately races across pool workers.
fn canonical_jsonl(events: &[Event]) -> String {
    let mut out = String::new();
    for ev in events {
        if ev.is_schedule_dependent() {
            continue;
        }
        out.push_str(&ev.to_json(false));
        out.push('\n');
    }
    out
}

#[test]
fn hung_child_stream_is_golden_at_every_worker_count() {
    let bless = std::env::var("JAHOB_BLESS").is_ok_and(|v| v == "1");
    let src = fixture("globalset");
    let golden = "tests/golden/obs_supervision_hang.jsonl";

    let run = |workers: usize| {
        let sink = Arc::new(MemorySink::new());
        let report = process_builder(
            Some(bapa_plan(IpcFault::HungChild)),
            Duration::from_millis(300),
            workers,
        )
        .sink(sink.clone())
        .build_verifier()
        .verify(&src)
        .expect("pipeline");
        (canonical_jsonl(&sink.events()), report)
    };

    let (baseline, report) = run(1);
    // The hang was really killed and really diagnosed as a timeout.
    assert!(stat(&report, "supervisor.kill") > 0, "{:?}", report.stats);
    assert!(
        stat(&report, "failure.bapa.timeout") > 0,
        "{:?}",
        report.stats
    );
    assert!(baseline.contains("supervisor.kill"));
    assert!(report.all_proved(), "a hung lane must not block the proof");

    for workers in WORKER_MATRIX {
        let (stream, report) = run(workers);
        assert_eq!(
            stream, baseline,
            "canonical stream at {workers} workers diverged"
        );
        assert!(report.all_proved());
    }

    if bless {
        std::fs::create_dir_all("tests/golden").expect("mkdir tests/golden");
        std::fs::write(golden, &baseline).unwrap_or_else(|e| panic!("{golden}: {e}"));
        return;
    }
    let want = std::fs::read_to_string(golden).unwrap_or_else(|e| {
        panic!("{golden}: {e}\nhint: regenerate with JAHOB_BLESS=1 cargo test --test supervision")
    });
    assert_eq!(
        baseline, want,
        "hung-child stream diverged from the golden JSONL — if intentional, \
         re-bless with JAHOB_BLESS=1 cargo test --test supervision"
    );
}

// ---- seeded chaos stands the backend down -------------------------------

#[test]
fn seeded_chaos_stands_the_process_backend_down() {
    // Seeded faults fire at thread-local boundaries inside the provers,
    // which a child process cannot see — so a seeded plan must stand the
    // backend down entirely, reproducing the in-process run exactly.
    let src = fixture("globalset");
    let seeded = Arc::new(FaultPlan::from_seed(11));

    let run = |isolation: Isolation| {
        let sink = Arc::new(MemorySink::new());
        let report = Config::builder()
            .workers(1)
            .isolation(isolation)
            .worker_program(WORKER_BIN)
            .fault_plan(seeded.clone())
            .sink(sink.clone())
            .build_verifier()
            .verify(&src)
            .expect("pipeline");
        (canonical_jsonl(&sink.events()), report)
    };

    let (in_proc_stream, in_proc) = run(Isolation::InProcess);
    let (proc_stream, proc) = run(Isolation::Process);
    assert_eq!(proc_stream, in_proc_stream);
    assert_eq!(verdict_lines(&proc), verdict_lines(&in_proc));
    assert_eq!(
        stat(&proc, "supervisor.spawn"),
        0,
        "a seeded plan must never reach the worker pool"
    );
}

// ---- IPC codec properties -----------------------------------------------

proptest! {
    #[test]
    fn frames_round_trip(kind in 0u8..255, payload in proptest::collection::vec(0u8..255, 0..512)) {
        let mut buf = Vec::new();
        write_frame(&mut buf, &Frame::new(kind, payload.clone())).expect("write");
        let got = read_frame(&mut &buf[..], DEFAULT_MAX_FRAME).expect("round trip");
        prop_assert_eq!(got.kind, kind);
        prop_assert_eq!(got.payload, payload);
    }

    #[test]
    fn truncated_frames_never_parse(kind in 0u8..255, payload in proptest::collection::vec(0u8..255, 0..256), keep in 0usize..1000) {
        let mut buf = Vec::new();
        write_frame(&mut buf, &Frame::new(kind, payload)).expect("write");
        let keep = keep % buf.len();
        prop_assert!(
            read_frame(&mut &buf[..keep], DEFAULT_MAX_FRAME).is_err(),
            "a {keep}-byte prefix of a {}-byte frame parsed",
            buf.len()
        );
    }

    #[test]
    fn single_bit_corruption_is_always_rejected(kind in 0u8..255, payload in proptest::collection::vec(0u8..255, 0..256), flip in 0usize..100_000) {
        let mut buf = Vec::new();
        write_frame(&mut buf, &Frame::new(kind, payload)).expect("write");
        let bit = flip % (buf.len() * 8);
        buf[bit / 8] ^= 1 << (bit % 8);
        prop_assert!(
            read_frame(&mut &buf[..], DEFAULT_MAX_FRAME).is_err(),
            "bit {bit} flipped and the frame still parsed"
        );
    }
}
