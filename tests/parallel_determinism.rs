//! Parallel runs must be bit-for-bit equal to sequential runs.
//!
//! The pipeline's contract (ISSUE 3): a `Verifier` with 1, 2, or 8
//! worker threads yields identical reports — same verdicts, same
//! diagnoses, same order-free counters — on every case study, with the
//! goal cache on or off, and under an armed chaos fault plan. Wall-clock
//! (per-obligation `millis`, `time.*` counters) and the pool's
//! scheduling tallies (`pool.*`) are the only things allowed to differ,
//! and `VerifyReport::deterministic_lines` excludes them.
//!
//! ISSUE 4 extends the contract to observability: the structured event
//! stream a run emits is bit-for-bit identical at any worker count (in
//! its deterministic serialization, which omits wall-clock fields).

use jahob_repro::jahob::{self, Config, FaultPlan, MemorySink, Verifier};
use proptest::prelude::*;
use std::sync::Arc;

const CASE_STUDIES: [&str; 5] = [
    "case_studies/list.javax",
    "case_studies/client.javax",
    "case_studies/assoclist.javax",
    "case_studies/globalset.javax",
    "case_studies/game.javax",
];

const WORKER_MATRIX: [usize; 3] = [1, 2, 8];

fn run(src: &str, config: &Config) -> Vec<String> {
    Verifier::new(config.clone())
        .verify(src)
        .expect("pipeline")
        .deterministic_lines()
}

fn config(workers: usize, goal_cache: bool) -> Config {
    Config {
        workers,
        goal_cache,
        ..Config::default()
    }
}

#[test]
fn all_case_studies_agree_across_worker_counts() {
    for path in CASE_STUDIES {
        let src = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("{path}: {e}"));
        let baseline = run(&src, &config(1, true));
        for workers in WORKER_MATRIX {
            let got = run(&src, &config(workers, true));
            assert_eq!(
                got, baseline,
                "{path}: report at {workers} workers diverged from sequential"
            );
        }
    }
}

#[test]
fn cache_off_agrees_across_worker_counts_and_never_flips_verdicts() {
    for path in CASE_STUDIES {
        let src = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("{path}: {e}"));
        let uncached = run(&src, &config(1, false));
        for workers in WORKER_MATRIX {
            let got = run(&src, &config(workers, false));
            assert_eq!(
                got, uncached,
                "{path}: cache-off report at {workers} workers diverged"
            );
        }
        // Verdict lines (everything before the `stat ` block) must agree
        // between cached and uncached runs: a cache hit may only replay a
        // verdict, never change one. Counters legitimately differ — a hit
        // replaces a portfolio attempt.
        let verdicts = |lines: &[String]| -> Vec<String> {
            lines
                .iter()
                .filter(|l| !l.starts_with("stat "))
                .cloned()
                .collect()
        };
        let cached = run(&src, &config(1, true));
        assert_eq!(
            verdicts(&cached),
            verdicts(&uncached),
            "{path}: goal cache changed a verdict"
        );
    }
}

#[test]
fn chaos_runs_agree_across_worker_counts() {
    // Seeded chaos: faults are keyed on (seed, site, obligation content),
    // so the same obligations draw the same faults no matter which worker
    // dispatches them or in which order. The goal cache stands down
    // automatically while a seeded plan is armed.
    let base = std::env::var("JAHOB_CHAOS_SEED")
        .ok()
        .and_then(|raw| raw.trim().parse::<u64>().ok())
        .unwrap_or(11);
    for path in ["case_studies/list.javax", "case_studies/client.javax"] {
        let src = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("{path}: {e}"));
        for seed in [base, base + 1] {
            let chaos_config = |workers: usize| {
                let mut c = config(workers, true);
                c.dispatch.fault_plan = Some(Arc::new(FaultPlan::from_seed(seed)));
                c.dispatch.cross_check = true;
                c.dispatch.obligation_fuel = 150_000;
                c.dispatch.bmc_bound = 2;
                c.dispatch.bmc_as_validity = false;
                c
            };
            let baseline = run(&src, &chaos_config(1));
            assert!(
                baseline.iter().any(|l| l.contains("chaos.injected")),
                "{path} seed {seed}: the plan must actually inject faults:\n{baseline:#?}"
            );
            for workers in WORKER_MATRIX {
                let got = run(&src, &chaos_config(workers));
                assert_eq!(
                    got, baseline,
                    "{path} seed {seed}: chaos report at {workers} workers diverged"
                );
            }
        }
    }
}

#[test]
fn worker_count_resolution() {
    assert_eq!(config(5, true).effective_workers(), 5);
    // A hand-written `workers: 0` means sequential; the environment is
    // consulted only by `Config::builder().build()`, exactly once.
    assert_eq!(config(0, true).effective_workers(), 1);
    // The builder resolves JAHOB_WORKERS; absent (or unparsable) means
    // sequential. The test environment must not leak a setting in.
    if std::env::var("JAHOB_WORKERS").is_err() {
        assert_eq!(Config::builder().build().effective_workers(), 1);
        assert_eq!(Config::builder().workers(3).build().effective_workers(), 3);
    }
}

/// The observability extension of the determinism contract: the event
/// stream (deterministic serialization) is bit-for-bit identical at any
/// worker count — with the shared goal cache on, and under seeded chaos.
#[test]
fn event_streams_agree_across_worker_counts() {
    let stream = |src: &str, workers: usize, chaos: bool| -> String {
        let sink = Arc::new(MemorySink::new());
        let mut builder = Config::builder().workers(workers).sink(sink.clone());
        if chaos {
            builder = builder.dispatch(jahob::DispatchConfig {
                fault_plan: Some(Arc::new(FaultPlan::from_seed(11))),
                cross_check: true,
                obligation_fuel: 150_000,
                bmc_bound: 2,
                bmc_as_validity: false,
                ..Default::default()
            });
        }
        builder.build_verifier().verify(src).expect("pipeline");
        sink.to_jsonl()
    };
    for path in ["case_studies/list.javax", "case_studies/client.javax"] {
        let src = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("{path}: {e}"));
        for chaos in [false, true] {
            let baseline = stream(&src, 1, chaos);
            assert!(!baseline.is_empty());
            for workers in WORKER_MATRIX {
                assert_eq!(
                    stream(&src, workers, chaos),
                    baseline,
                    "{path} (chaos: {chaos}): event stream at {workers} workers diverged"
                );
            }
        }
    }
}

proptest! {
    // Property flavor: any worker count in 1..=8 reproduces the
    // sequential report on a small program with a mix of proved and
    // refuted obligations.
    #[test]
    fn any_worker_count_matches_sequential(workers in 1usize..=8) {
        let src = r#"
class Counter {
  /*: public static specvar g :: int; */
  public static void bump(int limit)
  /*: requires "0 <= g & g <= limit" modifies g ensures "g <= limit + 1" */
  {
    //: g := "g + 1";
  }
  public static void bad()
  /*: modifies g ensures "g = old g" */
  {
    //: g := "g + 1";
  }
  public static void reset()
  /*: modifies g ensures "g = 0" */
  {
    //: g := "0";
  }
}
"#;
        let baseline = run(src, &config(1, true));
        let got = run(src, &config(workers, true));
        prop_assert_eq!(got, baseline);
    }
}

// ---------------------------------------------------------------------------
// ISSUE 8: speculative racing joins the determinism contract. Racing (and
// adaptive ordering) may only move wall-clock: the deterministic report
// and the canonical event stream must be bit-for-bit identical racing on
// vs. off, at any worker count, cold or warm.

/// Racing on/off × worker matrix × adaptive on/off: the deterministic
/// report never moves.
#[test]
fn racing_agrees_with_sequential_across_worker_counts() {
    for path in CASE_STUDIES {
        let src = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("{path}: {e}"));
        let baseline = run(&src, &config(1, true));
        for workers in WORKER_MATRIX {
            for adaptive in [false, true] {
                let racy = Config::builder()
                    .racing(true)
                    .adaptive(adaptive)
                    .workers(workers)
                    .build();
                let got = run(&src, &racy);
                assert_eq!(
                    got, baseline,
                    "{path}: racing report (workers={workers}, adaptive={adaptive}) \
                     diverged from the sequential baseline"
                );
            }
        }
    }
}

/// The canonical (schedule-independent) slice of the event stream is
/// bit-for-bit identical racing on vs. off. The raw stream legitimately
/// differs — `race.*` events exist only when racing and arrive in
/// schedule order — which is exactly why they are flagged
/// schedule-dependent like the `supervisor.*` family.
#[test]
fn racing_canonical_event_streams_match_sequential() {
    let canonical_stream = |src: &str, racing: bool, workers: usize| -> String {
        let sink = Arc::new(MemorySink::new());
        Config::builder()
            .racing(racing)
            .workers(workers)
            .sink(sink.clone())
            .build_verifier()
            .verify(src)
            .expect("pipeline");
        let mut out = String::new();
        for ev in sink.events() {
            if !ev.is_schedule_dependent() {
                out.push_str(&ev.to_json(false));
                out.push('\n');
            }
        }
        out
    };
    for path in ["case_studies/globalset.javax", "case_studies/game.javax"] {
        let src = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("{path}: {e}"));
        let baseline = canonical_stream(&src, false, 1);
        assert!(!baseline.is_empty());
        for workers in WORKER_MATRIX {
            assert_eq!(
                canonical_stream(&src, true, workers),
                baseline,
                "{path}: canonical stream with racing at {workers} workers diverged"
            );
        }
    }
}

/// Warm adaptive statistics may reorder race *starts* only: a session
/// whose stats table has already learned the case study produces the
/// same deterministic report as a cold one.
#[test]
fn warm_adaptive_stats_never_move_the_report() {
    for path in ["case_studies/globalset.javax", "case_studies/game.javax"] {
        let src = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("{path}: {e}"));
        // Both sessions keep their goal cache alive across calls, so the
        // second run is cache-warm in *both* — the only difference left
        // is the adaptive stats table, which must not show at all.
        let sequential = Config::builder().build_verifier();
        let racing = Config::builder()
            .racing(true)
            .adaptive(true)
            .build_verifier();
        for round in 0..2 {
            let want = sequential
                .verify(&src)
                .expect("pipeline")
                .deterministic_lines();
            let got = racing.verify(&src).expect("pipeline").deterministic_lines();
            assert_eq!(
                got, want,
                "{path}: racing+adaptive round {round} diverged from sequential"
            );
        }
    }
}
