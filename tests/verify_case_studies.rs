//! End-to-end verification of the paper's case studies (E1–E5).
//!
//! Each test pins down exactly which obligations the system proves — the
//! EXPERIMENTS.md ledger is generated from the same facts.

use jahob_repro::jahob::{self, Config};

fn verify(path: &str) -> jahob::VerifyReport {
    let src = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("{path}: {e}"));
    jahob::Verifier::new(Config::default())
        .verify(&src)
        .expect("pipeline")
}

/// E1 (Figures 1/3/4): the List implementation.
#[test]
fn e1_list_implementation() {
    let report = verify("case_studies/list.javax");
    // The straight-line methods verify completely: constructor, add, empty,
    // getOne — specification, representation invariants, and null-safety.
    for method in ["List", "add", "empty", "getOne"] {
        let m = report.method("List", method).unwrap();
        assert!(m.all_proved(), "List.{method} must fully verify:\n{report}");
    }
    // remove: every memory-safety obligation is proved; the functional
    // postcondition through the loop needs a full traversal invariant — the
    // provided safety invariant is correctly reported as too weak (§2.4:
    // speculative/weak invariants are "detected and rejected").
    let remove = report.method("List", "remove").unwrap();
    for o in &remove.obligations {
        if o.label.contains("null") {
            assert!(
                matches!(o.verdict, jahob::verify::VerdictSummary::Proved { .. }),
                "safety obligation failed: {} — {}",
                o.label,
                o.verdict
            );
        }
    }
    let (proved, _, unknown) = report.tally();
    assert!(proved >= 25, "{report}");
    assert_eq!(unknown, 0, "every obligation must be decided:\n{report}");
}

/// E2 (Figure 2): the two-list client, verified against the List interface.
#[test]
fn e2_list_client() {
    let report = verify("case_studies/client.javax");
    let ctor = report.method("Client", "Client").unwrap();
    assert!(ctor.all_proved(), "Client constructor:\n{report}");
    let mv = report.method("Client", "move").unwrap();
    assert!(mv.all_proved(), "Client.move:\n{report}");
}

/// E3: association lists with intermediate assertions.
#[test]
fn e3_assoclist() {
    let report = verify("case_studies/assoclist.javax");
    for (class, method) in [
        ("AssocList", "AssocList"),
        ("AssocList", "put"),
        ("Directory", "Directory"),
        ("Directory", "register"),
    ] {
        let m = report.method(class, method).unwrap();
        assert!(m.all_proved(), "{class}.{method}:\n{report}");
    }
}

/// E4: global data structures (static state).
#[test]
fn e4_global_structures() {
    let report = verify("case_studies/globalset.javax");
    assert!(report.all_proved(), "{report}");
}

/// E5: the turn-based strategy game, partially verified (`assuming`
/// summaries are skipped; everything else proves).
#[test]
fn e5_strategy_game() {
    let report = verify("case_studies/game.javax");
    assert!(report.all_proved(), "{report}");
    // The partial split: inRange is assumed, hence absent from the report.
    assert!(report.method("Game", "inRange").is_none());
    assert!(report.method("Game", "redAttack").is_some());
}

/// E13: seeded bugs are refuted with genuine counter-models.
#[test]
fn e13_bug_finding() {
    let src = std::fs::read_to_string("crates/bench/data/broken_add.javax").unwrap();
    let report = jahob::Verifier::new(Config::default())
        .verify(&src)
        .expect("pipeline");
    let (_, refuted, _) = report.tally();
    assert!(refuted > 0, "the seeded bug must be refuted:\n{report}");
}
