//! The persistent verification service (ISSUE 9).
//!
//! Four pins:
//!
//! * **Identity.** Verdicts and canonical event streams through the
//!   daemon are bit-for-bit identical to one-shot session runs — for
//!   every case study, at 1, 2, and 8 workers, cold and warm, and under
//!   concurrent clients.
//! * **Typed load-shedding.** A full admission queue answers BUSY with
//!   the queue depth; every *accepted* request is answered with a final
//!   report — accepted work is never dropped.
//! * **Graceful drain.** A DRAIN frame or SIGTERM finishes all admitted
//!   work, flushes, removes the socket file, and exits 0.
//! * **Socket chaos.** Every `SocketFault` kind at every `service.*`
//!   site degrades to at worst a dropped connection — a retrying client
//!   always lands the identical report, and the daemon keeps serving.

use jahob_repro::jahob::cli::OutputMode;
use jahob_repro::jahob::{
    Client, Config, Fault, FaultPlan, MemorySink, ReportRender, RequestOptions, Service,
    SocketFault, SubmitOptions, SubmitOutcome, Verifier,
};
use jahob_repro::util::ipc::{
    self, kind, read_frame, write_frame, Frame, Writer, DEFAULT_MAX_FRAME,
};
use std::io::Read;
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

const JAHOB_BIN: &str = env!("CARGO_BIN_EXE_jahob");

const CASE_STUDIES: [&str; 5] = [
    "case_studies/list.javax",
    "case_studies/client.javax",
    "case_studies/assoclist.javax",
    "case_studies/globalset.javax",
    "case_studies/game.javax",
];

const WORKER_MATRIX: [usize; 3] = [1, 2, 8];

fn fixture(path: &str) -> String {
    std::fs::read_to_string(path).unwrap_or_else(|e| panic!("{path}: {e}"))
}

/// A socket path in a fresh temp dir (Unix socket paths are
/// length-limited, so keep it short).
fn socket_path(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("jahob-svc-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join("d.sock")
}

fn service_config(workers: usize, socket: &Path) -> Config {
    Config {
        workers,
        socket: Some(socket.to_path_buf()),
        ..Config::default()
    }
}

/// Start a service and run its accept loop on a background thread.
/// Returns a handle that panics if the loop errored.
fn spawn_service(config: Config) -> (PathBuf, std::thread::JoinHandle<()>) {
    let service = Service::bind(config).expect("bind");
    let path = service.socket_path().to_path_buf();
    let handle = std::thread::spawn(move || service.run().expect("service run"));
    (path, handle)
}

/// The canonical form of a streamed (stable-rendered) event line: drop
/// the schedule-dependent families, exactly as
/// `Event::is_schedule_dependent` defines them.
fn is_canonical_line(line: &str) -> bool {
    let ty = line
        .strip_prefix("{\"type\":\"")
        .and_then(|rest| rest.split('"').next())
        .unwrap_or_else(|| panic!("unparseable event line: {line}"));
    !(ty.starts_with("supervisor.")
        || ty.starts_with("race.")
        || ty.starts_with("adaptive.")
        || ty.starts_with("service."))
}

/// One-shot reference for request `k` of a session: the report JSON
/// (stable render) and the canonical event stream.
fn reference_run(verifier: &Verifier, src: &str) -> (String, Vec<String>) {
    let sink = Arc::new(MemorySink::new());
    let options = RequestOptions {
        sink: Some(sink.clone() as Arc<dyn jahob_repro::jahob::Sink>),
        ..RequestOptions::default()
    };
    let report = verifier.verify_with(src, &options).expect("pipeline");
    let stream = sink
        .events()
        .iter()
        .filter(|ev| !ev.is_schedule_dependent())
        .map(|ev| ev.to_json(false))
        .collect();
    (report.to_json(ReportRender::STABLE), stream)
}

/// Submit through the daemon asking for the stable stream; returns the
/// report JSON (stripped of the render's trailing newline) and the
/// canonical stream.
fn daemon_run(client: &mut Client, src: &str) -> (String, Vec<String>) {
    let mut lines = Vec::new();
    let outcome = client
        .submit(
            src,
            &SubmitOptions {
                output: OutputMode::Json,
                stream_obs: true,
                stable_obs: true,
                deadline: None,
            },
            |line| lines.push(line.to_owned()),
        )
        .expect("submit");
    let SubmitOutcome::Report(text) = outcome else {
        panic!("expected a report, got {outcome:?}");
    };
    lines.retain(|l| is_canonical_line(l));
    (text.trim_end().to_owned(), lines)
}

// ---------------------------------------------------------------------------
// Identity
// ---------------------------------------------------------------------------

/// The tentpole invariant: for every case study, at every worker count,
/// cold and warm, the daemon's report and canonical stream are
/// bit-for-bit the session's. The reference session runs the same
/// request sequence, because a warm session legitimately attributes
/// replayed goals to its cache.
#[test]
fn daemon_matches_one_shot_cold_and_warm_across_worker_counts() {
    for workers in WORKER_MATRIX {
        let socket = socket_path(&format!("ident{workers}"));
        let (path, handle) = spawn_service(service_config(workers, &socket));
        let reference = Verifier::new(Config {
            workers,
            ..Config::default()
        });
        let mut client = Client::connect(&path).expect("connect");
        // Two passes over the corpus: pass one is cold per fixture,
        // pass two replays warm out of the shared session cache.
        for pass in ["cold", "warm"] {
            for case in CASE_STUDIES {
                let src = fixture(case);
                let (want_report, want_stream) = reference_run(&reference, &src);
                let (got_report, got_stream) = daemon_run(&mut client, &src);
                assert_eq!(
                    got_report, want_report,
                    "{case} ({pass}, {workers} workers): daemon report diverged"
                );
                assert_eq!(
                    got_stream, want_stream,
                    "{case} ({pass}, {workers} workers): daemon stream diverged"
                );
            }
        }
        client.drain().expect("drain");
        handle.join().unwrap();
        assert!(!path.exists(), "drained daemon must remove its socket");
    }
}

/// Concurrent clients: with the goal cache off every request is
/// independent, so all interleavings must produce the one-shot answer
/// exactly — fairness and queueing may reorder work but never change
/// it.
#[test]
fn concurrent_clients_all_get_the_one_shot_answer() {
    let socket = socket_path("conc");
    let config = Config {
        workers: 2,
        goal_cache: false,
        queue_depth: 64,
        socket: Some(socket.clone()),
        ..Config::default()
    };
    let (path, handle) = spawn_service(config);
    let reference = Verifier::new(Config {
        workers: 2,
        goal_cache: false,
        ..Config::default()
    });
    let expected: Vec<(String, (String, Vec<String>))> = CASE_STUDIES
        .iter()
        .map(|case| {
            let src = fixture(case);
            let want = reference_run(&reference, &src);
            (src, want)
        })
        .collect();
    let expected = Arc::new(expected);
    let mut joins = Vec::new();
    for n in 0..8usize {
        let path = path.clone();
        let expected = Arc::clone(&expected);
        joins.push(std::thread::spawn(move || {
            let mut client = Client::connect(&path).expect("connect");
            // Stagger starting points so lanes genuinely interleave.
            for i in 0..expected.len() {
                let (src, (want_report, want_stream)) = &expected[(n + i) % expected.len()];
                let (got_report, got_stream) = daemon_run(&mut client, src);
                assert_eq!(&got_report, want_report, "client {n}: report diverged");
                assert_eq!(&got_stream, want_stream, "client {n}: stream diverged");
            }
        }));
    }
    for join in joins {
        join.join().unwrap();
    }
    let mut client = Client::connect(&path).expect("connect");
    let status = client.status().expect("status");
    assert_eq!(status.accepted, 8 * CASE_STUDIES.len() as u64);
    assert_eq!(status.completed, status.accepted);
    client.drain().expect("drain");
    handle.join().unwrap();
}

// ---------------------------------------------------------------------------
// Admission control
// ---------------------------------------------------------------------------

/// Overflow sheds with a typed BUSY carrying the bound, and every
/// accepted request still gets its final report: replies partition
/// exactly into FINAL (= accepted) and BUSY (= rejected).
#[test]
fn queue_overflow_sheds_busy_and_never_drops_accepted_work() {
    let socket = socket_path("busy");
    let config = Config {
        queue_depth: 1,
        socket: Some(socket.clone()),
        ..Config::default()
    };
    let (path, handle) = spawn_service(config);
    let src = fixture("case_studies/list.javax");

    // Raw pipelining: fire 8 SUBMITs without waiting for replies, so
    // later ones land while earlier ones are still admitted.
    let mut stream = UnixStream::connect(&path).expect("connect");
    let mut w = Writer::new();
    w.put_u8(0); // no obs streaming
    w.put_u8(1); // json
    w.put_u64(0); // no deadline
    w.put_str(&src);
    let payload = w.into_vec();
    const BURST: usize = 8;
    for _ in 0..BURST {
        write_frame(&mut stream, &Frame::new(kind::SUBMIT, payload.clone())).unwrap();
    }
    let mut finals = Vec::new();
    let mut busy = 0usize;
    for _ in 0..BURST {
        let frame = read_frame(&mut stream, DEFAULT_MAX_FRAME).expect("reply");
        match frame.kind {
            kind::REPORT => {
                let mut r = ipc::Reader::new(&frame.payload);
                assert_eq!(r.get_u8().unwrap(), 1, "expected a FINAL report tag");
                finals.push(r.get_str().unwrap().to_owned());
            }
            kind::BUSY => {
                let mut r = ipc::Reader::new(&frame.payload);
                let queued = r.get_u32().unwrap();
                let depth = r.get_u32().unwrap();
                let draining = r.get_u8().unwrap();
                assert_eq!(depth, 1, "BUSY must carry the configured bound");
                assert!(queued >= 1, "BUSY must report a full queue");
                assert_eq!(draining, 0);
                busy += 1;
            }
            other => panic!("unexpected reply kind {other}"),
        }
    }
    assert!(
        !finals.is_empty(),
        "the first submission is always admitted"
    );
    assert!(busy >= 1, "a depth-1 queue under an 8-deep burst must shed");
    assert_eq!(finals.len() + busy, BURST);
    // Every admitted request produced the same completed report.
    for text in &finals {
        assert_eq!(text, &finals[0]);
    }
    drop(stream);
    let mut client = Client::connect(&path).expect("connect");
    let status = client.status().expect("status");
    assert_eq!(status.accepted as usize, finals.len());
    assert_eq!(status.completed as usize, finals.len());
    assert_eq!(status.rejected as usize, busy);
    client.drain().expect("drain");
    handle.join().unwrap();
}

/// A draining daemon refuses new work with BUSY (draining flag set)
/// but finishes everything admitted before the drain began.
#[test]
fn drain_finishes_admitted_work_and_refuses_new() {
    let socket = socket_path("drain");
    let config = Config {
        queue_depth: 16,
        socket: Some(socket.clone()),
        ..Config::default()
    };
    let (path, handle) = spawn_service(config);
    let src = fixture("case_studies/assoclist.javax");

    // Pipeline three requests, then drain from a second connection
    // before reading any reply.
    let mut stream = UnixStream::connect(&path).expect("connect");
    let mut w = Writer::new();
    w.put_u8(0);
    w.put_u8(1);
    w.put_u64(0);
    w.put_str(&src);
    let payload = w.into_vec();
    for _ in 0..3 {
        write_frame(&mut stream, &Frame::new(kind::SUBMIT, payload.clone())).unwrap();
    }
    let mut drainer = Client::connect(&path).expect("connect");
    // Wait until all three are admitted, so the drain genuinely has
    // queued/in-flight work to finish (admission is asynchronous).
    for _ in 0..200 {
        if drainer.status().expect("status").accepted >= 3 {
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    let completed = drainer.drain().expect("drain ack");
    assert!(
        completed >= 3,
        "drain acked with {completed} completed; the 3 admitted requests must finish first"
    );
    // All three reports are there to read even after the drain ack.
    for _ in 0..3 {
        let frame = read_frame(&mut stream, DEFAULT_MAX_FRAME).expect("reply");
        assert_eq!(frame.kind, kind::REPORT);
        assert_eq!(frame.payload[0], 1, "expected FINAL report tag");
    }
    handle.join().unwrap();
    assert!(!path.exists());
    // New submissions against the drained daemon fail to connect.
    assert!(Client::connect(&path).is_err());
}

// ---------------------------------------------------------------------------
// The binary: SIGTERM drain
// ---------------------------------------------------------------------------

/// `kill -TERM` on `jahob serve` finishes in-flight work, answers it,
/// removes the socket, and exits 0.
#[test]
fn sigterm_drains_the_serve_binary_and_exits_zero() {
    let socket = socket_path("term");
    let mut child = std::process::Command::new(JAHOB_BIN)
        .args(["serve", "--socket"])
        .arg(&socket)
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn serve");
    // Wait for the socket to come up.
    let mut stream = None;
    for _ in 0..200 {
        match UnixStream::connect(&socket) {
            Ok(s) => {
                stream = Some(s);
                break;
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
    let mut stream = stream.expect("daemon never bound its socket");

    // Pipeline work, then SIGTERM while it is (at least partly) queued.
    let src = fixture("case_studies/globalset.javax");
    let mut w = Writer::new();
    w.put_u8(0);
    w.put_u8(1);
    w.put_u64(0);
    w.put_str(&src);
    let payload = w.into_vec();
    for _ in 0..3 {
        write_frame(&mut stream, &Frame::new(kind::SUBMIT, payload.clone())).unwrap();
    }
    // Make sure all three are admitted before the signal lands, so the
    // drain has real work to finish.
    let mut prober = Client::connect(&socket).expect("probe connect");
    for _ in 0..200 {
        if prober.status().expect("status").accepted >= 3 {
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    let term = std::process::Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status()
        .expect("kill");
    assert!(term.success());
    // Admitted work is still answered after the signal.
    for _ in 0..3 {
        let frame = read_frame(&mut stream, DEFAULT_MAX_FRAME).expect("reply after SIGTERM");
        assert_eq!(frame.kind, kind::REPORT);
        assert_eq!(frame.payload[0], 1, "expected FINAL report tag");
    }
    let status = child.wait().expect("wait");
    assert!(
        status.success(),
        "SIGTERM must exit 0 after a graceful drain, got {status:?}"
    );
    assert!(!socket.exists(), "drained daemon must remove its socket");
    // The connection is closed once the daemon is gone.
    let mut rest = Vec::new();
    let _ = stream.read_to_end(&mut rest);
}

// ---------------------------------------------------------------------------
// Socket chaos
// ---------------------------------------------------------------------------

/// Every socket fault at every service site costs at most the faulted
/// connection: a retrying client always lands the bit-identical
/// report, the daemon's queue never wedges, and it still drains
/// cleanly.
#[test]
fn socket_faults_cost_one_connection_and_never_flip_a_verdict() {
    let src = fixture("case_studies/list.javax");
    // Cache off on both sides: a write-site fault can tear the *reply*
    // of a completed request, and the retry would then legitimately
    // replay warm (different cache attribution in stats). Independent
    // requests make "bit-identical report" the honest comparison.
    let reference = Verifier::new(Config {
        goal_cache: false,
        ..Config::default()
    });
    let want = reference
        .verify(&src)
        .expect("pipeline")
        .to_json(ReportRender::STABLE);
    let faults = [
        SocketFault::TornFrame,
        SocketFault::HungClient,
        SocketFault::Disconnect,
        SocketFault::SlowReader,
    ];
    for site in ["service.accept", "service.read", "service.write"] {
        for fault in faults {
            let socket = socket_path(&format!(
                "chaos-{}-{fault}",
                site.rsplit('.').next().unwrap()
            ));
            let plan = FaultPlan::quiet().inject(site, 0..2, Fault::Socket(fault));
            let config = Config::builder()
                .socket(socket.clone())
                .goal_cache(false)
                .fault_plan(Arc::new(plan))
                .build();
            let (path, handle) = spawn_service(config);
            // The first attempts may die to the injected fault; a fresh
            // connection must eventually get the identical report.
            let mut report = None;
            for _attempt in 0..20 {
                let Ok(mut client) = Client::connect(&path) else {
                    std::thread::sleep(Duration::from_millis(20));
                    continue;
                };
                match client.submit(
                    &src,
                    &SubmitOptions {
                        output: OutputMode::Json,
                        ..SubmitOptions::default()
                    },
                    |_| {},
                ) {
                    Ok(SubmitOutcome::Report(text)) => {
                        report = Some(text.trim_end().to_owned());
                        break;
                    }
                    // A torn/dropped connection is a loud transport
                    // error — never a fabricated verdict.
                    Ok(other) => panic!("{site}/{fault}: unexpected outcome {other:?}"),
                    Err(_) => std::thread::sleep(Duration::from_millis(20)),
                }
            }
            let report = report
                .unwrap_or_else(|| panic!("{site}/{fault}: no successful submit in 20 tries"));
            assert_eq!(
                report, want,
                "{site}/{fault}: the daemon's report diverged under chaos"
            );
            // The daemon is still healthy and drains cleanly.
            let mut client = Client::connect(&path).expect("post-chaos connect");
            client.drain().expect("post-chaos drain");
            handle.join().unwrap();
        }
    }
}

// ---------------------------------------------------------------------------
// Binding
// ---------------------------------------------------------------------------

/// A stale socket file (crashed daemon) is reclaimed; a live daemon on
/// the path is refused.
#[test]
fn stale_sockets_are_reclaimed_and_live_daemons_are_not() {
    let socket = socket_path("stale");
    std::fs::write(&socket, b"stale").unwrap();
    let (path, handle) = spawn_service(service_config(1, &socket));
    let second = Service::bind(service_config(1, &socket));
    let err = second.err().expect("binding over a live daemon must fail");
    assert_eq!(err.kind(), std::io::ErrorKind::AddrInUse);
    let mut client = Client::connect(&path).expect("connect");
    client.drain().expect("drain");
    handle.join().unwrap();
}
