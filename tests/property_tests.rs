//! Property-based tests (proptest) over the core data structures and the
//! soundness invariants that tie the workspace together:
//!
//! * parser/printer round-trips on randomly generated formulas,
//! * NNF preserves meaning (checked against the reference evaluator),
//! * the CDCL solver agrees with brute force on random CNF,
//! * BAPA never claims validity of a goal a small model refutes,
//! * the bounded model finder's verdicts match exhaustive enumeration.

use jahob_repro::logic::model::enumerate_models;
use jahob_repro::logic::{transform, BinOp, Form, Sort};
use jahob_repro::util::{FxHashMap, Symbol};
use proptest::prelude::*;

// ---- generators ---------------------------------------------------------

/// Random printable propositional formulas (no `Iff`: the printer spells
/// it `=`, which reparses as pre-elaboration `Eq` — a documented
/// normalization, not a bug).
fn prop_form_printable() -> impl Strategy<Value = Form> {
    let leaf = prop_oneof![
        (0u8..4).prop_map(|i| Form::v(&format!("p{i}"))),
        Just(Form::tt()),
        Just(Form::ff()),
    ];
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Form::and(vec![a, b])),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Form::or(vec![a, b])),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Form::implies(a, b)),
            inner.prop_map(Form::not),
        ]
    })
}

/// Random propositional formulas over atoms p0..p3.
fn prop_form() -> impl Strategy<Value = Form> {
    let leaf = prop_oneof![
        (0u8..4).prop_map(|i| Form::v(&format!("p{i}"))),
        Just(Form::tt()),
        Just(Form::ff()),
    ];
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Form::and(vec![a, b])),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Form::or(vec![a, b])),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Form::implies(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Form::iff(a, b)),
            inner.prop_map(Form::not),
        ]
    })
}

/// Random set-algebra formulas over set vars S0..S2 and obj vars x0..x1.
fn set_form() -> impl Strategy<Value = Form> {
    let set_term = {
        let leaf = prop_oneof![
            (0u8..3).prop_map(|i| Form::v(&format!("S{i}"))),
            Just(Form::EmptySet),
        ];
        leaf.prop_recursive(2, 12, 2, |inner| {
            prop_oneof![
                (inner.clone(), inner.clone()).prop_map(|(a, b)| Form::binop(BinOp::Union, a, b)),
                (inner.clone(), inner.clone()).prop_map(|(a, b)| Form::binop(BinOp::Inter, a, b)),
                (inner.clone(), inner).prop_map(|(a, b)| Form::binop(BinOp::Diff, a, b)),
            ]
        })
    };
    let atom = prop_oneof![
        (set_term.clone(), set_term.clone()).prop_map(|(a, b)| Form::binop(BinOp::Subseteq, a, b)),
        (set_term.clone(), set_term.clone()).prop_map(|(a, b)| Form::eq(a, b)),
        ((0u8..2), set_term.clone()).prop_map(|(i, s)| Form::elem(Form::v(&format!("x{i}")), s)),
    ];
    atom.prop_recursive(2, 12, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Form::and(vec![a, b])),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Form::or(vec![a, b])),
            (inner.clone(), inner).prop_map(|(a, b)| Form::implies(a, b)),
        ]
    })
}

fn eval_prop(form: &Form, bits: u32) -> bool {
    let mut map = FxHashMap::default();
    for i in 0..4u32 {
        map.insert(
            Symbol::intern(&format!("p{i}")),
            Form::BoolLit(bits & (1 << i) != 0),
        );
    }
    matches!(transform::simplify(&form.subst(&map)), Form::BoolLit(true))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// print ∘ parse is the identity on printable formulas.
    #[test]
    fn printer_parser_roundtrip(f in prop_form_printable()) {
        let printed = f.to_string();
        let reparsed = jahob_repro::logic::parse_form(&printed)
            .unwrap_or_else(|e| panic!("reparse of {printed:?}: {e}"));
        prop_assert_eq!(f, reparsed);
    }

    /// NNF preserves meaning on every valuation.
    #[test]
    fn nnf_preserves_meaning(f in prop_form()) {
        let g = transform::nnf(&f);
        for bits in 0..16u32 {
            prop_assert_eq!(eval_prop(&f, bits), eval_prop(&g, bits));
        }
    }

    /// simplify preserves meaning on every valuation.
    #[test]
    fn simplify_preserves_meaning(f in prop_form()) {
        let g = transform::simplify(&f);
        for bits in 0..16u32 {
            prop_assert_eq!(eval_prop(&f, bits), eval_prop(&g, bits));
        }
    }

    /// CDCL agrees with brute force on random 3-CNF.
    #[test]
    fn sat_matches_brute_force(
        clauses in proptest::collection::vec(
            proptest::collection::vec((0u32..6, any::<bool>()), 1..=3),
            1..12
        )
    ) {
        use jahob_repro::sat::{SolveResult, Solver, Var};
        let mut solver = Solver::new();
        solver.reserve_vars(6);
        for clause in &clauses {
            let lits: Vec<_> = clause
                .iter()
                .map(|&(v, pos)| Var(v).lit(pos))
                .collect();
            solver.add_clause(&lits);
        }
        let got = solver.solve() == SolveResult::Unsat;
        let brute_unsat = (0u32..64).all(|mask| {
            !clauses.iter().all(|clause| {
                clause
                    .iter()
                    .any(|&(v, pos)| (mask & (1 << v) != 0) == pos)
            })
        });
        prop_assert_eq!(got, brute_unsat);
    }

    /// BAPA soundness: whenever BAPA claims a set goal valid, exhaustive
    /// small-model enumeration agrees (universe ≤ 2 suffices to refute the
    /// goals this generator produces, so the check is two-sided).
    #[test]
    fn bapa_sound_against_small_models(f in set_form()) {
        let sig: FxHashMap<Symbol, Sort> = [
            ("S0", Sort::objset()),
            ("S1", Sort::objset()),
            ("S2", Sort::objset()),
            ("x0", Sort::Obj),
            ("x1", Sort::Obj),
        ]
        .iter()
        .map(|(n, s)| (Symbol::intern(n), s.clone()))
        .collect();
        if let Ok(valid) = jahob_repro::bapa::bapa_valid(&f, &sig) {
            let syms: Vec<(Symbol, Sort)> =
                sig.iter().map(|(k, v)| (*k, v.clone())).collect();
            let small = enumerate_models(2, (0, 0), &syms, &mut |m| {
                m.eval_bool(&f).unwrap()
            });
            if valid {
                prop_assert!(small, "BAPA claimed validity but a small model refutes: {f}");
            }
        }
    }

    /// Budget starvation loses completeness, never soundness: whatever a
    /// fuel-starved dispatcher still decides agrees with both the
    /// unlimited portfolio and exhaustive small-model enumeration. An
    /// `Unknown` under starvation is always acceptable; a flipped verdict
    /// never is.
    #[test]
    fn starved_dispatcher_never_weakens_verdicts(
        f in set_form(),
        fuel in 1u64..5_000,
    ) {
        use jahob_repro::jahob::{Budget, Dispatcher, Verdict};
        let sig: FxHashMap<Symbol, Sort> = [
            ("S0", Sort::objset()),
            ("S1", Sort::objset()),
            ("S2", Sort::objset()),
            ("x0", Sort::Obj),
            ("x1", Sort::Obj),
        ]
        .iter()
        .map(|(n, s)| (Symbol::intern(n), s.clone()))
        .collect();
        let syms: Vec<(Symbol, Sort)> =
            sig.iter().map(|(k, v)| (*k, v.clone())).collect();
        let d = Dispatcher::new(sig.clone(), FxHashMap::default());
        let starved = d.prove_governed(&f, &Budget::with_fuel(fuel));
        match &starved {
            Verdict::Proved { .. } => {
                // Sound against the evaluator (universe 2 suffices to
                // refute the goals this generator produces) …
                let small_valid = enumerate_models(2, (0, 0), &syms, &mut |m| {
                    m.eval_bool(&f).unwrap()
                });
                prop_assert!(
                    small_valid,
                    "starved dispatcher proved a refutable goal: {}", f
                );
                // … and consistent with the unlimited portfolio.
                let unlimited = Dispatcher::new(sig, FxHashMap::default());
                prop_assert!(
                    !matches!(unlimited.prove(&f), Verdict::CounterModel(_)),
                    "starved Proved vs unlimited CounterModel: {}", f
                );
            }
            Verdict::CounterModel(m) => {
                // The dispatcher may have refuted an equivalence-preserving
                // simplification of `f` in which an unused variable
                // disappeared; complete the model with defaults for those
                // symbols (any extension still refutes `f`).
                use jahob_repro::logic::model::Value;
                let mut completed = (**m).clone();
                for (name, sort) in &syms {
                    completed.interp.entry(*name).or_insert_with(|| match sort {
                        Sort::Obj => Value::Obj(0),
                        _ => Value::Set(Default::default()),
                    });
                }
                prop_assert_eq!(completed.eval_bool(&f), Ok(false));
                let unlimited = Dispatcher::new(sig, FxHashMap::default());
                prop_assert!(
                    !unlimited.prove(&f).is_proved(),
                    "starved CounterModel vs unlimited Proved: {}", f
                );
            }
            Verdict::Unknown(_) => {} // degraded, not wrong
        }
    }

    /// Chaos soundness: under an arbitrary seeded fault plan (panics,
    /// timeouts, starvation, slow-burn, *and lying provers*) with the
    /// watchdog on, the dispatcher's verdict is either `Unknown` or agrees
    /// with the fault-free unlimited portfolio. Faults degrade verdicts;
    /// they never flip them.
    #[test]
    fn chaos_verdicts_never_flip(f in set_form(), seed in any::<u64>()) {
        use jahob_repro::jahob::{Dispatcher, FaultPlan, Verdict};
        use std::sync::Arc;
        let sig: FxHashMap<Symbol, Sort> = [
            ("S0", Sort::objset()),
            ("S1", Sort::objset()),
            ("S2", Sort::objset()),
            ("x0", Sort::Obj),
            ("x1", Sort::Obj),
        ]
        .iter()
        .map(|(n, s)| (Symbol::intern(n), s.clone()))
        .collect();
        let mut chaotic = Dispatcher::new(sig.clone(), FxHashMap::default());
        chaotic.config.fault_plan = Some(Arc::new(FaultPlan::from_seed(seed)));
        chaotic.config.obligation_fuel = 150_000;
        chaotic.config.cross_check = true;
        match chaotic.prove(&f) {
            Verdict::Proved { .. } => {
                let unlimited = Dispatcher::new(sig, FxHashMap::default());
                prop_assert!(
                    unlimited.prove(&f).is_proved(),
                    "chaos Proved vs fault-free non-Proved (seed {}): {}", seed, f
                );
            }
            Verdict::CounterModel(_) => {
                let unlimited = Dispatcher::new(sig, FxHashMap::default());
                prop_assert!(
                    matches!(unlimited.prove(&f), Verdict::CounterModel(_)),
                    "chaos CounterModel vs fault-free non-refuted (seed {}): {}", seed, f
                );
            }
            Verdict::Unknown(_) => {} // degraded, not wrong
        }
    }

    /// Bounded model finder exactness on the set fragment: find_model
    /// succeeds iff enumeration finds a model (universe 2).
    #[test]
    fn bmc_matches_enumeration(f in set_form()) {
        let sig: FxHashMap<Symbol, Sort> = [
            ("S0", Sort::objset()),
            ("S1", Sort::objset()),
            ("S2", Sort::objset()),
            ("x0", Sort::Obj),
            ("x1", Sort::Obj),
        ]
        .iter()
        .map(|(n, s)| (Symbol::intern(n), s.clone()))
        .collect();
        let syms: Vec<(Symbol, Sort)> =
            sig.iter().map(|(k, v)| (*k, v.clone())).collect();
        let found = jahob_repro::models::find_model(&f, &sig, 2)
            .expect("set fragment grounds")
            .is_some();
        let exists = !enumerate_models(2, (0, 0), &syms, &mut |m| {
            !m.eval_bool(&f).unwrap()
        });
        prop_assert_eq!(found, exists, "{}", f);
    }
}

// ---- diagnosis merging under race-order nondeterminism (ISSUE 8) --------

use jahob_repro::jahob::{Diagnosis, FailureReason, ProverId, VerdictKind};

/// The most severe reason there is: a watchdog-caught lie.
fn disagreement() -> FailureReason {
    FailureReason::Disagreement {
        claimed: VerdictKind::Proved,
        witness: VerdictKind::Refuted,
    }
}

/// The severity order is load-bearing API: `Diagnosis::record` keeps the
/// per-prover *max*, so reordering these variants silently changes every
/// merged diagnosis. Pin the exact total order, least to most severe.
#[test]
fn failure_reason_severity_order_is_pinned() {
    use FailureReason::*;
    let order = [
        Unsupported,
        CircuitOpen,
        GaveUp,
        FuelExhausted,
        Timeout,
        Panicked,
        ResourceExceeded,
        Unconfirmed,
        disagreement(),
    ];
    for pair in order.windows(2) {
        assert!(
            pair[0] < pair[1],
            "severity order changed: {:?} must be below {:?}",
            pair[0],
            pair[1]
        );
    }
}

fn any_reason() -> impl Strategy<Value = FailureReason> {
    use FailureReason::*;
    prop_oneof![
        Just(Unsupported),
        Just(CircuitOpen),
        Just(GaveUp),
        Just(FuelExhausted),
        Just(Timeout),
        Just(Panicked),
        Just(ResourceExceeded),
        Just(Unconfirmed),
        Just(disagreement()),
    ]
}

fn any_prover() -> impl Strategy<Value = ProverId> {
    (0usize..ProverId::COUNT).prop_map(|i| ProverId::ALL[i])
}

fn singleton(prover: ProverId, reason: FailureReason) -> Diagnosis {
    Diagnosis {
        attempts: vec![(prover, reason)],
        obligation_spent: None,
    }
}

proptest! {
    /// Merging is keyed on the prover, never on arrival position: folding
    /// the same set of per-prover attempts in *any* order — wall-clock
    /// race-finish order included — yields the same per-prover reasons
    /// (the pointwise max). This is the property that lets speculative
    /// race losers be merged in canonical portfolio order while threads
    /// complete in scheduler order.
    #[test]
    fn merge_from_is_order_insensitive_per_prover(
        attempts in proptest::collection::vec((any_prover(), any_reason()), 1..12),
        order_seed in any::<u64>(),
    ) {
        // Canonical fold: attempts in the given order.
        let mut canonical = Diagnosis::default();
        for &(p, r) in &attempts {
            canonical.merge_from(&singleton(p, r));
        }
        // Adversarial fold: a seed-shuffled arrival order.
        let mut shuffled = attempts.clone();
        let mut state = order_seed | 1;
        for i in (1..shuffled.len()).rev() {
            // xorshift is plenty for a permutation; proptest owns the seed.
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            shuffled.swap(i, (state as usize) % (i + 1));
        }
        let mut raced = Diagnosis::default();
        for &(p, r) in &shuffled {
            raced.merge_from(&singleton(p, r));
        }
        // Same per-prover verdicts regardless of arrival order…
        for prover in ProverId::ALL {
            prop_assert_eq!(
                canonical.reason(prover),
                raced.reason(prover),
                "prover {} disagreed across merge orders", prover.name()
            );
        }
        // …and each recorded reason is exactly the max of that prover's
        // occurrences.
        for prover in ProverId::ALL {
            let expected = attempts
                .iter()
                .filter(|(p, _)| *p == prover)
                .map(|(_, r)| *r)
                .max();
            prop_assert_eq!(canonical.reason(prover), expected);
        }
    }

    /// `obligation_spent` merges to the most severe marker, and merging
    /// is idempotent: folding a diagnosis into itself changes nothing.
    #[test]
    fn merge_from_obligation_spent_keeps_max_and_is_idempotent(
        a in prop_oneof![Just(None), any_reason().prop_map(Some)],
        b in prop_oneof![Just(None), any_reason().prop_map(Some)],
        attempts in proptest::collection::vec((any_prover(), any_reason()), 0..8),
    ) {
        let mut left = Diagnosis { attempts: Vec::new(), obligation_spent: a };
        for &(p, r) in &attempts {
            left.merge_from(&singleton(p, r));
        }
        let right = Diagnosis { attempts: Vec::new(), obligation_spent: b };
        left.merge_from(&right);
        prop_assert_eq!(left.obligation_spent, a.max(b));

        let snapshot = left.clone();
        left.merge_from(&snapshot);
        prop_assert_eq!(
            format!("{left:?}"), format!("{snapshot:?}"),
            "merge_from must be idempotent"
        );
    }
}

// ---------------------------------------------------------------------------
// ISSUE 10: relevance slicing is a weakening. Dropping hypotheses can
// only make a sequent *harder* to prove, so a valid rung certifies the
// full formula — brute-forced here over every valuation.

/// Random implication chains `h0 --> h1 --> ... --> goal` over
/// propositional pieces, the shape `Sequent::of` peels.
fn implication_chain() -> impl Strategy<Value = Form> {
    (proptest::collection::vec(prop_form(), 0..4), prop_form()).prop_map(|(hyps, goal)| {
        hyps.into_iter()
            .rev()
            .fold(goal, |acc, h| Form::implies(h, acc))
    })
}

proptest! {
    /// Soundness of the ladder: if any rung is valid, the full formula
    /// is valid; and the final rung is the untouched original.
    #[test]
    fn sliced_validity_implies_full_validity(f in implication_chain()) {
        use jahob_repro::logic::sequent::relevance_ladder;
        let valid = |g: &Form| (0..16u32).all(|bits| eval_prop(g, bits));
        let rungs = relevance_ladder(&f, 3);
        let last = rungs.last().expect("the ladder is never empty");
        prop_assert_eq!(&last.form, &f, "final rung must be the untouched formula");
        prop_assert_eq!(last.dropped, 0);
        for rung in &rungs {
            if valid(&rung.form) {
                prop_assert!(
                    valid(&f),
                    "rung with {} hyps is valid but the full formula is not: \
                     {:?} sliced from {:?}",
                    rung.kept, rung.form, f
                );
            }
        }
    }

    /// The sequent decomposition round-trips meaning: peeling into
    /// hypotheses and goal and refolding evaluates identically on every
    /// valuation (the refold may reassociate `&`-joined hypotheses).
    #[test]
    fn sequent_refold_preserves_meaning(f in implication_chain()) {
        let refolded = jahob_repro::logic::sequent::Sequent::of(&f).to_form();
        for bits in 0..16u32 {
            prop_assert_eq!(eval_prop(&f, bits), eval_prop(&refolded, bits));
        }
    }
}
