//! Chaos suite (tentpole acceptance criterion): sweep deterministic fault
//! seeds and assert the dispatcher's one non-negotiable invariant —
//!
//! > no injected fault (panic, timeout, fuel starvation, slow-burn, or
//! > lying prover) ever produces a `Proved`/`Refuted` that disagrees with
//! > the fault-free verdict; faults degrade to diagnosed `Unknown` at
//! > worst.
//!
//! Every run is reproducible: the fault plan is a pure function of a `u64`
//! seed, so a failing seed here is a complete bug report.

use jahob_repro::jahob::{Dispatcher, Fault, FaultPlan, GoalCache, Lie, ReportRender, Verdict};
use jahob_repro::logic::{form, Form, Sort};
use jahob_repro::util::{FxHashMap, Symbol};
use std::sync::Arc;

fn sig() -> FxHashMap<Symbol, Sort> {
    let mut sig: FxHashMap<Symbol, Sort> = FxHashMap::default();
    for (n, s) in [
        ("S", Sort::objset()),
        ("T", Sort::objset()),
        ("x", Sort::Obj),
        ("y", Sort::Obj),
        ("i", Sort::Int),
        ("j", Sort::Int),
        ("next", Sort::field(Sort::Obj)),
    ] {
        sig.insert(Symbol::intern(n), s);
    }
    sig.insert(Symbol::intern("Object.alloc"), Sort::objset());
    sig
}

/// A battery covering every verdict kind and several provers: LIA- and
/// BAPA-valid goals, an EUF goal, refutable goals (counter-model search),
/// and a goal the whole portfolio fails on.
fn goal_battery() -> Vec<Form> {
    [
        "i < j --> i + 1 <= j",
        "S Int T <= S",
        "card (S Un T) <= card S + card T",
        "x = y --> next x = next y",
        "x : S --> x : T",
        "x : S & S <= T --> x : T",
        "S <= T & T <= S --> S = T",
        "ALL a b c. a ~= null & b ~= null & c ~= null --> a = b | b = c | a = c",
    ]
    .iter()
    .map(|s| form(s))
    .collect()
}

/// The verdict kind of the fault-free portfolio, computed with an
/// unmetered budget so chaos runs are compared against the portfolio's
/// full deciding power.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Kind {
    Proved,
    Refuted,
    Unknown,
}

fn kind(v: &Verdict) -> Kind {
    match v {
        Verdict::Proved { .. } => Kind::Proved,
        Verdict::CounterModel(_) => Kind::Refuted,
        Verdict::Unknown(_) => Kind::Unknown,
    }
}

#[test]
fn no_seed_ever_flips_a_verdict() {
    let goals = goal_battery();
    // Fault-free ground truth, one dispatcher reused across goals (breaker
    // state carries over exactly as it would in a real run — with no
    // faults it never trips).
    let mut baseline = Dispatcher::new(sig(), FxHashMap::default());
    // Keep the model finder below the 3-object counter-model (and out of
    // bounded-validity mode) so the last battery goal stays a genuine
    // `Unknown` for the portfolio.
    baseline.config.bmc_bound = 2;
    baseline.config.bmc_as_validity = false;
    let truth: Vec<Kind> = goals.iter().map(|g| kind(&baseline.prove(g))).collect();
    assert_eq!(truth[0], Kind::Proved, "battery sanity");
    assert!(truth.contains(&Kind::Refuted), "battery sanity");
    assert!(truth.contains(&Kind::Unknown), "battery sanity");

    // CI shifts the sweep window with `JAHOB_CHAOS_SEED=<base>`; locally
    // the suite covers seeds 0..48. Either way a failure names the exact
    // seed to replay.
    let base = FaultPlan::from_env().map(|p| p.seed()).unwrap_or(0);
    let mut total_injected = 0u64;
    for seed in base..base + 48 {
        let mut chaos = Dispatcher::new(sig(), FxHashMap::default());
        chaos.config.fault_plan = Some(Arc::new(FaultPlan::from_seed(seed)));
        // Paranoid-mode knobs: metered fuel so slow-burn faults bite, the
        // watchdog on so lying provers are cross-checked.
        chaos.config.obligation_fuel = 150_000;
        chaos.config.cross_check = true;
        chaos.config.bmc_bound = 2;
        chaos.config.bmc_as_validity = false;
        for (goal, expected) in goals.iter().zip(&truth) {
            let got = kind(&chaos.prove(goal));
            match got {
                Kind::Unknown => {} // degraded, never wrong
                decided => assert_eq!(
                    decided, *expected,
                    "seed {seed} flipped `{goal}`: chaos says {got:?}, fault-free says {expected:?}"
                ),
            }
        }
        total_injected += chaos
            .stats
            .snapshot()
            .iter()
            .filter(|(k, _)| k.starts_with("chaos.injected"))
            .map(|(_, v)| *v)
            .sum::<u64>();
    }
    // The sweep must actually have exercised the fault paths: at a ≈1/4
    // injection rate over 48 seeds × 8 goals, silence means the plan was
    // never armed.
    assert!(
        total_injected > 100,
        "suspiciously few injected faults: {total_injected}"
    );
}

/// A lying prover's verdict that slipped into the goal cache is still
/// caught by the watchdog: cache hits are re-confirmed under
/// `cross_check`, and an unconfirmable entry is demoted to `Unknown` and
/// evicted — the lie is never replayed.
#[test]
fn lying_provers_cached_verdict_is_caught_by_cross_check() {
    // `x : S --> x : T` is falsifiable: the honest portfolio refutes it.
    let goal = form("x : S --> x : T");
    let cache = Arc::new(GoalCache::new());

    // Dispatcher 1 runs with the watchdog OFF and HOL compelled to claim
    // `Proved` on every attempt (a targeted quiet plan, so the cache stays
    // active). The lie lands in the shared cache.
    let mut liar = Dispatcher::new(sig(), FxHashMap::default());
    liar.cache = Some(Arc::clone(&cache));
    liar.config.cross_check = false;
    liar.config.fault_plan = Some(Arc::new(FaultPlan::quiet().inject(
        "dispatch.hol-auto",
        0..u64::MAX,
        Fault::WrongVerdict(Lie::ClaimProved),
    )));
    let lied = liar.prove(&goal);
    assert!(
        lied.is_proved(),
        "setup: the unchecked liar must get its lie through: {lied:?}"
    );
    assert!(!cache.is_empty(), "setup: the lie must be cached");

    // Dispatcher 2 is honest (no fault plan) with the watchdog ON. The
    // cache hit replays `Proved [hol-auto]` — and the confirmation pass,
    // which excludes the claiming prover, refutes or fails to confirm it.
    let mut watchdog = Dispatcher::new(sig(), FxHashMap::default());
    watchdog.cache = Some(Arc::clone(&cache));
    watchdog.config.cross_check = true;
    let checked = watchdog.prove(&goal);
    assert!(
        matches!(checked, Verdict::Unknown(_)),
        "the cached lie must be demoted, not replayed: {checked:?}"
    );
    assert_eq!(watchdog.stats.get("cache.hit"), 1);
    assert_eq!(watchdog.stats.get("cache.evicted"), 1);
    assert!(cache.is_empty(), "the poisoned entry must be evicted");

    // With the entry gone, a fresh honest dispatch recomputes the truth.
    let mut honest = Dispatcher::new(sig(), FxHashMap::default());
    honest.cache = Some(Arc::clone(&cache));
    honest.config.cross_check = true;
    assert_eq!(
        kind(&honest.prove(&goal)),
        Kind::Refuted,
        "after eviction the honest portfolio refutes the goal"
    );
    assert_eq!(honest.stats.get("cache.hit"), 0);
}

/// Same-seed runs are bit-for-bit reproducible: identical verdict kinds
/// and identical injection counters. This is what makes `JAHOB_CHAOS_SEED`
/// failures replayable bug reports.
#[test]
fn chaos_runs_are_deterministic() {
    let goals = goal_battery();
    let run = |seed: u64| -> (Vec<Kind>, Vec<(String, u64)>) {
        let mut d = Dispatcher::new(sig(), FxHashMap::default());
        d.config.fault_plan = Some(Arc::new(FaultPlan::from_seed(seed)));
        d.config.obligation_fuel = 150_000;
        d.config.cross_check = true;
        d.config.bmc_bound = 2;
        d.config.bmc_as_validity = false;
        let kinds = goals.iter().map(|g| kind(&d.prove(g))).collect();
        let mut stats: Vec<(String, u64)> = d
            .stats
            .snapshot()
            .into_iter()
            .filter(|(k, _)| k.starts_with("chaos.") || k.starts_with("breaker."))
            .collect();
        stats.sort();
        (kinds, stats)
    };
    for seed in [3u64, 17, 41] {
        assert_eq!(run(seed), run(seed), "seed {seed} not reproducible");
    }
}

/// Disk-fault chaos (ISSUE 6): sweep seeded plans over the persistent
/// proof store's IO boundary. For every seed the pins are the same as for
/// prover faults — verdicts never flip — plus the store's own:
///
/// * a faulted run completes (no panic, no pipeline error) with exactly
///   the fault-free verdicts, at worst from a cold cache;
/// * whatever the faults left on disk, the directory reopens cleanly and
///   a fresh fault-free run still agrees with the baseline.
#[test]
fn seeded_disk_faults_never_corrupt_the_store() {
    use jahob_repro::jahob::Config;

    // Small all-proved source: the sweep is about store IO, not provers.
    const SRC: &str = r#"
class Counter {
   /*:
     public static specvar count :: int;
     invariant "0 <= count";
   */
   private static int c;

   public static void reset()
   /*: modifies count ensures "count = 0" */
   {
      c = 0;
      //: count := "0";
   }

   public static void inc()
   /*: requires "0 <= count" modifies count ensures "count = old count + 1" */
   {
      c = c + 1;
      //: count := "count + 1";
   }
}
"#;

    fn run(
        dir: &std::path::Path,
        plan: Option<Arc<FaultPlan>>,
    ) -> jahob_repro::jahob::VerifyReport {
        let mut builder = Config::builder().workers(1).cache_path(dir);
        if let Some(plan) = plan {
            builder = builder.fault_plan(plan);
        }
        builder.build_verifier().verify(SRC).expect("run completes")
    }
    fn verdicts(report: &jahob_repro::jahob::VerifyReport) -> String {
        report
            .methods
            .iter()
            .map(|m| m.to_json(ReportRender::STABLE))
            .collect::<Vec<_>>()
            .join("\n")
    }
    // Prover faults may legitimately shift which prover discharges a goal
    // (the portfolio routes around a panicking backend) — the chaos
    // invariant is on verdict *kinds*, as in the prover-fault sweep.
    fn kinds(report: &jahob_repro::jahob::VerifyReport) -> Vec<Kind> {
        use jahob_repro::jahob::VerdictSummary;
        report
            .methods
            .iter()
            .flat_map(|m| m.obligations.iter())
            .map(|o| match &o.verdict {
                VerdictSummary::Proved { .. } => Kind::Proved,
                VerdictSummary::Refuted => Kind::Refuted,
                VerdictSummary::Unknown(_) => Kind::Unknown,
            })
            .collect()
    }

    let scratch = std::env::temp_dir().join(format!("jahob-chaos-disk-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);

    // Fault-free ground truth (persistence on, pristine directory).
    let baseline_dir = scratch.join("baseline");
    std::fs::create_dir_all(&baseline_dir).expect("scratch dir");
    let truth_report = run(&baseline_dir, None);
    let truth = verdicts(&truth_report);
    let truth_kinds = kinds(&truth_report);

    let base = FaultPlan::from_env().map(|p| p.seed()).unwrap_or(0);
    let mut store_faults_seen = 0u64;
    for seed in base..base + 16 {
        let dir = scratch.join(format!("seed-{seed}"));
        std::fs::create_dir_all(&dir).expect("scratch dir");

        // Populate cleanly, then rerun twice under the seeded plan: the
        // second faulted run opens (and may mangle) a warm store.
        run(&dir, None);
        for _ in 0..2 {
            let plan = Some(Arc::new(FaultPlan::from_seed(seed)));
            let report = run(&dir, plan);
            for (got, expected) in kinds(&report).iter().zip(&truth_kinds) {
                match got {
                    Kind::Unknown => {} // degraded, never wrong
                    decided => assert_eq!(
                        decided, expected,
                        "seed {seed}: a store/prover fault flipped a verdict"
                    ),
                }
            }
            store_faults_seen += ["store.error", "store.recovered", "store.quarantined"]
                .iter()
                .map(|k| report.stats.get(*k).copied().unwrap_or(0))
                .sum::<u64>()
                + report
                    .stats
                    .get("store.lock.took-over-stale")
                    .copied()
                    .unwrap_or(0);
        }

        // However the faults left the directory, it reopens cleanly and
        // fault-free verification still agrees with the baseline.
        let healed = run(&dir, None);
        assert_eq!(
            truth,
            verdicts(&healed),
            "seed {seed}: battered directory must reopen to correct verdicts"
        );
    }
    // At a ≈25% per-site injection rate over 16 seeds × 2 faulted runs ×
    // 3+ store sites, silence means the disk-fault path was never armed.
    assert!(
        store_faults_seen > 0,
        "suspiciously quiet sweep: no store fault ever surfaced"
    );
    let _ = std::fs::remove_dir_all(&scratch);
}

// ---------------------------------------------------------------------------
// ISSUE 8: racing joins the chaos contract.

/// `race.cancelled` faults never flip a verdict: sweep the dedicated
/// `race_cancel_seed` chaos knob (deterministic pre-start revocation of
/// racers) across 48 seeds and assert the racing dispatcher's verdicts
/// are identical — not merely "no worse" — to the sequential fault-free
/// truth. Cancelled racers are re-run inline through the real attempt
/// path, so injected cancellation costs time, never answers.
#[test]
fn race_cancellation_never_flips_a_verdict() {
    let goals = goal_battery();
    let mut baseline = Dispatcher::new(sig(), FxHashMap::default());
    baseline.config.bmc_bound = 2;
    baseline.config.bmc_as_validity = false;
    let truth: Vec<Verdict> = goals.iter().map(|g| baseline.prove(g)).collect();

    let mut total_cancelled = 0u64;
    for seed in 0..48u64 {
        let mut racer = Dispatcher::new(sig(), FxHashMap::default());
        racer.config.racing = true;
        racer.config.race_cancel_seed = Some(seed);
        racer.config.bmc_bound = 2;
        racer.config.bmc_as_validity = false;
        for (goal, expected) in goals.iter().zip(&truth) {
            let got = racer.prove(goal);
            assert_eq!(
                format!("{got:?}"),
                format!("{expected:?}"),
                "race-cancel seed {seed} changed the verdict on `{goal}`"
            );
        }
        total_cancelled += racer.stats.get("race.cancelled");
    }
    // At a ≈1/3 cancellation rate over 48 seeds × 8 goals × 5 racers the
    // fault must actually have fired; silence means the knob is dead.
    assert!(
        total_cancelled > 100,
        "suspiciously few cancelled racers: {total_cancelled}"
    );
}

/// An armed fault plan makes the race stand down (racer threads cannot
/// see the per-obligation fault scopes), so chaos semantics under racing
/// are *exactly* the sequential chaos semantics — same injections, same
/// degraded verdicts, same counters.
#[test]
fn racing_under_fault_plan_equals_sequential_chaos() {
    let goals = goal_battery();
    let run = |racing: bool| -> Vec<String> {
        let mut d = Dispatcher::new(sig(), FxHashMap::default());
        d.config.racing = racing;
        d.config.fault_plan = Some(Arc::new(FaultPlan::from_seed(17)));
        d.config.obligation_fuel = 150_000;
        d.config.cross_check = true;
        d.config.bmc_bound = 2;
        d.config.bmc_as_validity = false;
        let mut out: Vec<String> = goals.iter().map(|g| format!("{:?}", d.prove(g))).collect();
        out.extend(
            d.stats
                .snapshot()
                .into_iter()
                .filter(|(k, _)| !k.contains("micros") && !k.contains("time"))
                .map(|(k, v)| format!("{k}={v}")),
        );
        out
    };
    assert_eq!(run(true), run(false), "racing changed chaos semantics");
}
