//! Crash-safe persistent proof cache (ISSUE 6) — cross-process pins.
//!
//! Each test opens the cache the way a real second process would: a fresh
//! `Verifier` (or a fresh `GoalCache::open_persistent`) pointed at the
//! same directory. The invariants:
//!
//! * **Warm restarts replay, never re-prove.** A second session over the
//!   same source discharges every previously-proved goal from the store —
//!   zero fresh `proved.*` counters — and its method verdicts are
//!   identical to the cold run's.
//! * **Reports are persistence-blind.** A cold run with persistence on is
//!   byte-for-byte the run with persistence off, at 1, 2, and 8 workers;
//!   warm runs are byte-for-byte identical to each other at any worker
//!   count.
//! * **Corruption degrades, never lies.** Torn tails, flipped bytes,
//!   deleted manifests, garbage segments, and stale locks all reopen —
//!   at worst cold — with unchanged verdicts, and the directory stays
//!   reopenable afterwards.
//! * **Injected disk faults are invisible in verdicts.** Every
//!   `DiskFault` kind, targeted at every store IO site, completes the
//!   run with baseline verdicts and leaves the directory reopenable.

use jahob_repro::jahob::goal_cache::{CachedProof, Lookup};
use jahob_repro::jahob::{Config, GoalCache, ProverId, ReportRender, VerifyReport};
use jahob_repro::util::{DiskFault, Fault, FaultPlan};
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A unique per-test scratch directory (no tempfile crate in the tree).
fn temp_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "jahob-persistence-{tag}-{}-{}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap_or_else(|e| panic!("create {}: {e}", dir.display()));
    dir
}

fn source() -> String {
    fs::read_to_string("case_studies/list.javax").expect("case study")
}

/// A two-method counter class: a handful of quick LIA obligations, all
/// proved — enough to exercise populate/replay without the cost of a
/// full case study. Used by the 6-kind × 3-site fault-injection matrix.
const TINY: &str = r#"
class Tiny {
   /*:
     public static specvar count :: int;
     invariant "0 <= count";
   */
   private static int c;

   public static void reset()
   /*: modifies count ensures "count = 0" */
   {
      c = 0;
      //: count := "0";
   }

   public static void inc()
   /*: requires "0 <= count" modifies count ensures "count = old count + 1" */
   {
      c = c + 1;
      //: count := "count + 1";
   }
}
"#;

/// Run `src` through a fresh session; `dir` enables persistence.
fn run(src: &str, dir: Option<&Path>, workers: usize) -> VerifyReport {
    run_with_plan(src, dir, workers, None)
}

fn run_with_plan(
    src: &str,
    dir: Option<&Path>,
    workers: usize,
    plan: Option<Arc<FaultPlan>>,
) -> VerifyReport {
    let mut builder = Config::builder().workers(workers);
    if let Some(dir) = dir {
        builder = builder.cache_path(dir);
    }
    if let Some(plan) = plan {
        builder = builder.fault_plan(plan);
    }
    builder
        .build_verifier()
        .verify(src)
        .expect("pipeline must complete")
}

/// The stable per-method verdict section, the part of the report that
/// must never depend on cache temperature or store health.
fn methods_json(report: &VerifyReport) -> String {
    report
        .methods
        .iter()
        .map(|m| m.to_json(ReportRender::STABLE))
        .collect::<Vec<_>>()
        .join("\n")
}

fn stat(report: &VerifyReport, key: &str) -> u64 {
    report.stats.get(key).copied().unwrap_or(0)
}

fn fresh_proof_count(report: &VerifyReport) -> u64 {
    report
        .stats
        .iter()
        .filter(|(k, _)| k.starts_with("proved."))
        .map(|(_, v)| v)
        .sum()
}

#[test]
fn warm_restart_replays_proofs_and_never_reproves() {
    let src = source();
    let dir = temp_dir("warm");

    let cold = run(&src, Some(&dir), 1);
    assert!(fresh_proof_count(&cold) > 0, "cold run proves goals fresh");
    assert!(stat(&cold, "store.flush.records") > 0, "cold run persists");

    // A brand-new session (fresh Verifier, fresh GoalCache) — the only
    // shared state is the directory on disk.
    let warm = run(&src, Some(&dir), 1);
    assert_eq!(
        methods_json(&cold),
        methods_json(&warm),
        "warm verdicts must be identical to cold"
    );
    assert!(
        stat(&warm, "store.load.entries") > 0,
        "warm run replays the store: {:?}",
        warm.stats
    );
    assert_eq!(
        fresh_proof_count(&warm),
        0,
        "a warm session never re-proves a persisted goal: {:?}",
        warm.stats
    );
    assert_eq!(
        stat(&warm, "cache.hit"),
        stat(&warm, "store.load.entries"),
        "every replayed entry is hit exactly once on list.javax"
    );

    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn cold_reports_are_bit_identical_to_persistence_off() {
    let src = source();
    for workers in [1usize, 2, 8] {
        let dir = temp_dir("identity");
        let off = run(&src, None, workers);
        let on = run(&src, Some(&dir), workers);
        assert_eq!(
            off.to_json(ReportRender::STABLE),
            on.to_json(ReportRender::STABLE),
            "persistence must be invisible in the stable report (workers={workers})"
        );
        let _ = fs::remove_dir_all(&dir);
    }
}

#[test]
fn warm_reports_are_worker_invariant() {
    let src = source();
    let dir = temp_dir("workers");
    run(&src, Some(&dir), 1); // populate

    let warm1 = run(&src, Some(&dir), 1);
    for workers in [2usize, 8] {
        let warm_n = run(&src, Some(&dir), workers);
        assert_eq!(
            warm1.to_json(ReportRender::STABLE),
            warm_n.to_json(ReportRender::STABLE),
            "warm report must not depend on worker count (workers={workers})"
        );
    }
    let _ = fs::remove_dir_all(&dir);
}

/// Satellite: `Verifier` session reuse with `shared_cache` and
/// persistence enabled together. Hit attribution stays deterministic and
/// the second `verify()` call never re-proves; dropping the session
/// flushes the shared store so a later process starts warm.
#[test]
fn session_reuse_with_shared_persistent_cache() {
    const DIGEST: u64 = 0x6a61_686f_625f_7063; // test-local, only self-consistency matters
    let src = TINY;
    let dir = temp_dir("session");

    let cache = Arc::new(GoalCache::open_persistent(&dir, DIGEST, None, None));
    let verifier = Config::builder()
        .workers(1)
        .shared_cache(Arc::clone(&cache))
        .build_verifier();

    let first = verifier.verify(src).expect("first call");
    assert!(fresh_proof_count(&first) > 0, "first call proves fresh");

    let second = verifier.verify(src).expect("second call");
    assert_eq!(
        methods_json(&first),
        methods_json(&second),
        "session reuse must not change verdicts"
    );
    assert_eq!(
        fresh_proof_count(&second),
        0,
        "second call replays the warm shared cache: {:?}",
        second.stats
    );
    // Deterministic hit attribution: the second call hits exactly the
    // distinct goals the first call proved and cached; only uncacheable
    // goals (refutations, unknowns) miss again.
    assert_eq!(
        stat(&second, "cache.hit"),
        stat(&first, "cache.miss") + stat(&first, "cache.hit") - stat(&second, "cache.miss"),
        "first: {:?}\nsecond: {:?}",
        first.stats,
        second.stats
    );

    // Drop the session and the cache handle: the write-behind layer
    // flushes on drop, so a later process starts warm from disk.
    drop(verifier);
    drop(cache);
    let reopened = GoalCache::open_persistent(&dir, DIGEST, None, None);
    assert!(
        !reopened.is_empty(),
        "dropping the session persisted the proofs"
    );
    drop(reopened);
    let _ = fs::remove_dir_all(&dir);
}

/// Apply `corrupt` to a populated store directory, then pin: the warm
/// run still completes with baseline verdicts (at worst cold) and the
/// directory remains reopenable for one more clean round-trip.
fn corruption_case(tag: &str, corrupt: impl Fn(&Path)) {
    let src = TINY;
    let dir = temp_dir(tag);
    let baseline = run(src, Some(&dir), 1);

    corrupt(&dir);

    let recovered = run(src, Some(&dir), 1);
    assert_eq!(
        methods_json(&baseline),
        methods_json(&recovered),
        "{tag}: corruption must never change a verdict"
    );

    // The store must have healed: one more clean round-trip works.
    let again = run(src, Some(&dir), 1);
    assert_eq!(
        methods_json(&baseline),
        methods_json(&again),
        "{tag}: directory must stay reopenable after recovery"
    );
    let _ = fs::remove_dir_all(&dir);
}

fn segment_paths(dir: &Path) -> Vec<PathBuf> {
    let mut segments: Vec<PathBuf> = fs::read_dir(dir)
        .expect("read store dir")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("seg-") && n.ends_with(".log"))
        })
        .collect();
    segments.sort();
    assert!(!segments.is_empty(), "populated store has segments");
    segments
}

#[test]
fn truncated_segment_tail_is_dropped() {
    corruption_case("truncate", |dir| {
        let seg = segment_paths(dir).pop().unwrap();
        let bytes = fs::read(&seg).unwrap();
        // Tear mid-record: keep the magic plus half of the remainder.
        let keep = 8 + (bytes.len() - 8) / 2;
        fs::write(&seg, &bytes[..keep]).unwrap();
    });
}

#[test]
fn flipped_byte_is_caught_by_the_record_crc() {
    corruption_case("bitflip", |dir| {
        let seg = segment_paths(dir).pop().unwrap();
        let mut bytes = fs::read(&seg).unwrap();
        let mid = 8 + (bytes.len() - 8) / 2;
        bytes[mid] ^= 0x40;
        fs::write(&seg, bytes).unwrap();
    });
}

#[test]
fn missing_manifest_resets_to_cold() {
    corruption_case("manifest", |dir| {
        fs::remove_file(dir.join("MANIFEST")).unwrap();
    });
}

#[test]
fn garbage_segment_is_quarantined() {
    corruption_case("garbage", |dir| {
        let seg = segment_paths(dir).pop().unwrap();
        fs::write(&seg, b"this is not a segment file at all").unwrap();
    });
}

#[test]
fn stale_lock_is_taken_over() {
    corruption_case("stalelock", |dir| {
        // A PID that is certainly not alive: the kernel's pid_max caps
        // real PIDs well below this.
        fs::write(dir.join("LOCK"), "999999999\n").unwrap();
    });
}

#[test]
fn foreign_digest_entries_are_never_replayed() {
    const THEIRS: u64 = 1;
    const OURS: u64 = 2;
    let dir = temp_dir("digest");
    {
        let cache = GoalCache::open_persistent(&dir, THEIRS, None, None);
        if let Lookup::Miss(claim) = cache.begin(7) {
            claim.fill(CachedProof {
                prover: ProverId::Lia,
                bound: None,
                fuel: 3,
            });
        };
        // drop flushes
    }
    let foreign = GoalCache::open_persistent(&dir, OURS, None, None);
    assert_eq!(foreign.len(), 0, "a digest change must cold-start");
    drop(foreign);
    let _ = fs::remove_dir_all(&dir);
}

/// Every injected disk-fault kind, at every store IO site, on both the
/// cold (populate) and warm (replay) leg: the run completes, verdicts
/// match the fault-free baseline, and the directory stays reopenable.
#[test]
fn injected_store_faults_never_change_verdicts() {
    let src = TINY;
    let baseline = run(src, None, 1);
    let baseline_methods = methods_json(&baseline);

    let kinds = [
        DiskFault::TornWrite,
        DiskFault::BitFlip,
        DiskFault::ShortRead,
        DiskFault::NoSpace,
        DiskFault::RenameFail,
        DiskFault::StaleLock,
    ];
    for kind in kinds {
        for site in ["store.load", "store.flush", "store.lock"] {
            let dir = temp_dir("inject");
            let plan = || Arc::new(FaultPlan::quiet().inject(site, 0..64, Fault::Disk(kind)));

            // Cold leg under fault, then warm leg under the same fault.
            let cold = run_with_plan(src, Some(&dir), 1, Some(plan()));
            assert_eq!(
                baseline_methods,
                methods_json(&cold),
                "{kind} at {site}: cold verdicts must match baseline"
            );
            let warm = run_with_plan(src, Some(&dir), 1, Some(plan()));
            assert_eq!(
                baseline_methods,
                methods_json(&warm),
                "{kind} at {site}: warm verdicts must match baseline"
            );

            // The battered directory always reopens cleanly.
            let healed = run(src, Some(&dir), 1);
            assert_eq!(
                baseline_methods,
                methods_json(&healed),
                "{kind} at {site}: directory must stay reopenable"
            );
            let _ = fs::remove_dir_all(&dir);
        }
    }
}

#[test]
fn read_only_fallback_when_lock_is_held() {
    let src = TINY;
    let dir = temp_dir("readonly");
    run(src, Some(&dir), 1); // populate

    // Hold the lock the way a live sibling process would (same process
    // counts: the store sees its own live PID and demotes to read-only).
    fs::write(dir.join("LOCK"), format!("{}\n", std::process::id())).unwrap();

    let warm = run(src, Some(&dir), 1);
    assert_eq!(
        fresh_proof_count(&warm),
        0,
        "read-only mode still replays persisted proofs: {:?}",
        warm.stats
    );
    assert_eq!(
        stat(&warm, "store.lock.read-only"),
        1,
        "the demotion is observable: {:?}",
        warm.stats
    );

    fs::remove_file(dir.join("LOCK")).unwrap();
    let _ = fs::remove_dir_all(&dir);
}
