//! Integration coverage for the run-wide normalized-goal cache: what may
//! be cached (proofs), what must never be (budget-starved `Unknown`s,
//! refutations), which goals collide (alpha-equivalent ones), and the one
//! hard invariant — a cache hit never changes a verdict.

use jahob_repro::jahob::{Budget, Dispatcher, GoalCache, Verdict};
use jahob_repro::logic::{form, Form, Sort};
use jahob_repro::util::{FxHashMap, Symbol};
use std::sync::Arc;

fn sig() -> FxHashMap<Symbol, Sort> {
    let mut sig: FxHashMap<Symbol, Sort> = FxHashMap::default();
    for (n, s) in [
        ("S", Sort::objset()),
        ("T", Sort::objset()),
        ("x", Sort::Obj),
        ("y", Sort::Obj),
        ("i", Sort::Int),
        ("j", Sort::Int),
        ("next", Sort::field(Sort::Obj)),
    ] {
        sig.insert(Symbol::intern(n), s);
    }
    sig.insert(Symbol::intern("Object.alloc"), Sort::objset());
    sig
}

fn cached_dispatcher(cache: &Arc<GoalCache>) -> Dispatcher {
    let mut d = Dispatcher::new(sig(), FxHashMap::default());
    d.cache = Some(Arc::clone(cache));
    d
}

#[test]
fn alpha_equivalent_goals_hit() {
    let cache = Arc::new(GoalCache::new());
    let d = cached_dispatcher(&cache);
    let a = form("ALL a b. a < b --> a + 1 <= b");
    let b = form("ALL p q. p < q --> p + 1 <= q");
    assert!(d.prove(&a).is_proved(), "battery sanity");
    assert!(d.prove(&b).is_proved(), "alpha variant must also prove");
    assert_eq!(d.stats.get("cache.miss"), 1, "one distinct goal");
    assert_eq!(d.stats.get("cache.hit"), 1, "the alpha variant hits");
}

#[test]
fn cross_dispatcher_hits_share_one_cache() {
    // Two dispatchers (two methods of a run) sharing the cache: the
    // second never re-proves what the first already discharged.
    let cache = Arc::new(GoalCache::new());
    let goal = form("card (S Un T) <= card S + card T");
    let d1 = cached_dispatcher(&cache);
    let first = d1.prove(&goal);
    let Verdict::Proved { prover, .. } = first else {
        panic!("battery sanity: {first:?}");
    };
    let d2 = cached_dispatcher(&cache);
    match d2.prove(&goal) {
        Verdict::Proved {
            prover: hit_prover, ..
        } => assert_eq!(hit_prover, prover, "a hit replays the proving prover"),
        other => panic!("cached goal must stay proved: {other:?}"),
    }
    assert_eq!(d2.stats.get("cache.hit"), 1);
    assert_eq!(d2.stats.get("cache.miss"), 0);
}

#[test]
fn budget_starved_unknowns_are_never_cached() {
    let cache = Arc::new(GoalCache::new());
    let d = cached_dispatcher(&cache);
    let goal = form("card (S Un T) <= card S + card T");
    // Starved: a couple of fuel units cannot carry any prover to a
    // verdict. The claim must be abandoned, not filled.
    let starved = d.prove_governed(&goal, &Budget::with_fuel(3));
    assert!(
        matches!(starved, Verdict::Unknown(_)),
        "3 fuel cannot prove BAPA goals: {starved:?}"
    );
    assert!(
        cache.is_empty(),
        "a budget-starved Unknown must leave no cache entry"
    );
    assert_eq!(d.stats.get("cache.hit"), 0);
    // With real budget the same dispatcher recomputes (miss, not a
    // poisoned hit) and proves.
    let recovered = d.prove_governed(&goal, &Budget::unlimited());
    assert!(recovered.is_proved(), "{recovered:?}");
    assert_eq!(d.stats.get("cache.miss"), 2, "starved + recomputed");
    assert_eq!(d.stats.get("cache.hit"), 0);
}

#[test]
fn refutations_are_never_cached() {
    let cache = Arc::new(GoalCache::new());
    let d = cached_dispatcher(&cache);
    let goal = form("x : S --> x : T");
    for _ in 0..2 {
        match d.prove(&goal) {
            Verdict::CounterModel(_) => {}
            other => panic!("battery sanity: {other:?}"),
        }
    }
    assert_eq!(
        d.stats.get("cache.hit"),
        0,
        "counter-models stay thread-local, both dispatches recompute"
    );
    assert!(cache.is_empty());
}

#[test]
fn hits_never_flip_a_verdict() {
    // The chaos-suite battery covers all three verdict kinds. Proving it
    // twice through a shared cache must agree kind-for-kind with an
    // uncached dispatcher.
    let battery = [
        "i < j --> i + 1 <= j",
        "S Int T <= S",
        "card (S Un T) <= card S + card T",
        "x = y --> next x = next y",
        "x : S --> x : T",
        "x : S & S <= T --> x : T",
        "S <= T & T <= S --> S = T",
        "ALL a b c. a ~= null & b ~= null & c ~= null --> a = b | b = c | a = c",
    ];
    let goals: Vec<Form> = battery.iter().map(|s| form(s)).collect();
    let kind = |v: &Verdict| match v {
        Verdict::Proved { .. } => 'P',
        Verdict::CounterModel(_) => 'R',
        Verdict::Unknown(_) => 'U',
    };
    let plain = Dispatcher::new(sig(), FxHashMap::default());
    let truth: Vec<char> = goals.iter().map(|g| kind(&plain.prove(g))).collect();

    let cache = Arc::new(GoalCache::new());
    let d = cached_dispatcher(&cache);
    for round in 0..2 {
        let got: Vec<char> = goals.iter().map(|g| kind(&d.prove(g))).collect();
        assert_eq!(got, truth, "cached round {round} flipped a verdict");
    }
    assert!(
        d.stats.get("cache.hit") > 0,
        "second round must actually hit: {:?}",
        d.stats.snapshot()
    );
}

#[test]
fn hits_report_saved_fuel() {
    let cache = Arc::new(GoalCache::new());
    let mut d = cached_dispatcher(&cache);
    d.config.obligation_fuel = 500_000;
    let goal = form("card (S Un T) <= card S + card T");
    assert!(d.prove(&goal).is_proved());
    assert!(d.prove(&goal).is_proved());
    assert!(
        d.stats.get("cache.saved.fuel") > 0,
        "a metered hit must report the fuel the original dispatch burned: {:?}",
        d.stats.snapshot()
    );
}
