//! Relevance-sliced sequents (ISSUE 10).
//!
//! Slicing drops hypotheses outside the goal's symbol cone and proves
//! the sliced sequent first, widening one cone step at a time up to the
//! untouched original formula. The pins:
//!
//! * **Verdict classification is invariant.** Slicing on vs. off, at 1,
//!   2, and 8 workers, racing on or off: every obligation keeps its
//!   classification (proved / refuted / unknown). The *attribution* of a
//!   proof may move to a cheaper prover — a sliced goal can fall inside
//!   a fragment the full goal escapes — which is the whole point, so
//!   proved lines are compared by classification, not prover name.
//!   Refuted and unknown lines must match verbatim: a counter-model is
//!   only ever reported against the full sequent, and an unknown is
//!   diagnosed on the ladder's final (full) rung.
//! * **Streams stay deterministic.** With slicing on, the canonical
//!   event stream — including the `slice.*` family, which is
//!   content-determined and deliberately *not* schedule-dependent — is
//!   bit-for-bit identical at any worker count.
//! * **Stand-down.** Under an armed fault plan or a metered budget the
//!   ladder disengages completely: no `slice.*` events, bit-for-bit the
//!   same report as slicing off.
//! * **Spurious counter-models widen, never refute.** A counter-model
//!   found on a slice that does not falsify the full sequent is
//!   discarded (`slice.spurious`) and the ladder widens; the obligation
//!   still proves.
//! * **Cache collapse.** Obligations that differ only in irrelevant
//!   hypotheses share the sliced rung's cache entry.

use jahob_repro::jahob::{self, Config, FaultPlan, Isolation, MemorySink, Verifier};
use std::sync::Arc;

const CASE_STUDIES: [&str; 5] = [
    "case_studies/list.javax",
    "case_studies/client.javax",
    "case_studies/assoclist.javax",
    "case_studies/globalset.javax",
    "case_studies/game.javax",
];

const WORKER_MATRIX: [usize; 3] = [1, 2, 8];

fn fixture(path: &str) -> String {
    std::fs::read_to_string(path).unwrap_or_else(|e| panic!("{path}: {e}"))
}

fn run(src: &str, config: &Config) -> jahob::VerifyReport {
    Verifier::new(config.clone()).verify(src).expect("pipeline")
}

/// Deterministic report lines with proved attributions erased: `proved
/// [hol]` and `proved [presburger]` both become `proved`. Slicing
/// legitimately moves a proof to a cheaper prover; it must never move
/// anything else. Stat lines are dropped — slicing adds `slice.*`
/// counters and shifts per-prover `attempt.*`/`fuel.*` tallies by
/// design.
fn classification_lines(report: &jahob::VerifyReport) -> Vec<String> {
    report
        .deterministic_lines()
        .into_iter()
        .filter(|line| !line.starts_with("stat "))
        .map(|line| match line.find(" :: proved") {
            Some(at) => line[..at + " :: proved".len()].to_owned(),
            None => line,
        })
        .collect()
}

/// The canonical (schedule-independent) serialization of a run's event
/// stream, exactly as `parallel_determinism.rs` pins it for racing.
fn canonical_stream(sink: &MemorySink) -> String {
    let mut out = String::new();
    for ev in sink.events() {
        if !ev.is_schedule_dependent() {
            out.push_str(&ev.to_json(false));
            out.push('\n');
        }
    }
    out
}

fn stat(report: &jahob::VerifyReport, name: &str) -> u64 {
    report.stats.get(name).copied().unwrap_or(0)
}

// ---- verdict-classification identity ------------------------------------

#[test]
fn slicing_preserves_classifications_on_every_case_study() {
    for path in CASE_STUDIES {
        let src = fixture(path);
        let baseline = classification_lines(&run(&src, &Config::builder().workers(1).build()));
        let sliced = Config::builder().slicing(true).workers(1).build();
        assert_eq!(
            classification_lines(&run(&src, &sliced)),
            baseline,
            "{path}: slicing changed a verdict classification"
        );
    }
}

/// The worker-matrix × racing cross product, on the two case studies
/// where racing actually engages (the rest are covered at 1 worker
/// above; the determinism of the *within-mode* report across worker
/// counts is pinned separately below).
#[test]
fn slicing_preserves_classifications_under_racing_and_workers() {
    for path in ["case_studies/globalset.javax", "case_studies/game.javax"] {
        let src = fixture(path);
        let baseline = classification_lines(&run(&src, &Config::builder().workers(1).build()));
        for workers in WORKER_MATRIX {
            for racing in [false, true] {
                let sliced = Config::builder()
                    .slicing(true)
                    .racing(racing)
                    .workers(workers)
                    .build();
                assert_eq!(
                    classification_lines(&run(&src, &sliced)),
                    baseline,
                    "{path}: slicing (workers={workers}, racing={racing}) \
                     changed a verdict classification"
                );
            }
        }
    }
}

/// Within the slicing-on mode the full deterministic report — stats
/// included — is identical at every worker count. (Slicing on vs. off is
/// compared only by classification above; 1-vs-8-workers within a mode
/// has no such allowance.)
#[test]
fn sliced_reports_are_deterministic_across_worker_counts() {
    for path in CASE_STUDIES {
        let src = fixture(path);
        let sliced = |workers: usize| {
            run(
                &src,
                &Config::builder().slicing(true).workers(workers).build(),
            )
            .deterministic_lines()
        };
        let baseline = sliced(1);
        for workers in WORKER_MATRIX {
            assert_eq!(
                sliced(workers),
                baseline,
                "{path}: sliced report at {workers} workers diverged"
            );
        }
    }
}

/// Process isolation does not interact with the ladder: each rung is
/// dispatched through the same supervised path, and the sliced report is
/// identical to the in-process one.
#[test]
fn sliced_reports_survive_process_isolation() {
    let src = fixture("case_studies/globalset.javax");
    let in_process = run(&src, &Config::builder().slicing(true).build());
    let supervised = run(
        &src,
        &Config::builder()
            .slicing(true)
            .isolation(Isolation::Process)
            .worker_program(env!("CARGO_BIN_EXE_jahob"))
            .build(),
    );
    let strip = |r: &jahob::VerifyReport| -> Vec<String> {
        r.deterministic_lines()
            .into_iter()
            .filter(|l| !l.starts_with("stat "))
            .collect()
    };
    assert_eq!(strip(&supervised), strip(&in_process));
    assert!(in_process.all_proved());
}

// ---- canonical event streams --------------------------------------------

#[test]
fn sliced_canonical_streams_agree_across_worker_counts() {
    let stream = |src: &str, workers: usize| -> String {
        let sink = Arc::new(MemorySink::new());
        Config::builder()
            .slicing(true)
            .workers(workers)
            .sink(sink.clone())
            .build_verifier()
            .verify(src)
            .expect("pipeline");
        canonical_stream(&sink)
    };
    for path in ["case_studies/globalset.javax", "case_studies/game.javax"] {
        let src = fixture(path);
        let baseline = stream(&src, 1);
        assert!(!baseline.is_empty());
        for workers in WORKER_MATRIX {
            assert_eq!(
                stream(&src, workers),
                baseline,
                "{path}: sliced canonical stream at {workers} workers diverged"
            );
        }
    }
}

// ---- stand-down ----------------------------------------------------------

/// An armed fault plan stands the ladder down completely: the run is
/// bit-for-bit the run with slicing off, and no `slice.*` event or stat
/// ever appears. (Faults are drawn per dispatch attempt; a ladder would
/// change which attempts exist.)
#[test]
fn slicing_stands_down_under_chaos() {
    let src = fixture("case_studies/list.javax");
    let chaos = |slicing: bool| -> (Vec<String>, String) {
        let sink = Arc::new(MemorySink::new());
        let report = Config::builder()
            .slicing(slicing)
            .sink(sink.clone())
            .dispatch(jahob::DispatchConfig {
                slicing,
                fault_plan: Some(Arc::new(FaultPlan::from_seed(11))),
                cross_check: true,
                obligation_fuel: 150_000,
                bmc_bound: 2,
                bmc_as_validity: false,
                ..Default::default()
            })
            .build_verifier()
            .verify(&src)
            .expect("pipeline");
        (report.deterministic_lines(), canonical_stream(&sink))
    };
    let (plain_report, plain_stream) = chaos(false);
    let (sliced_report, sliced_stream) = chaos(true);
    assert_eq!(sliced_report, plain_report);
    assert_eq!(sliced_stream, plain_stream);
    assert!(
        !sliced_stream.contains("slice."),
        "ladder must stand down under an armed fault plan"
    );
}

/// A metered fuel budget also stands the ladder down: re-spending the
/// budget once per rung would change exhaustion diagnoses.
#[test]
fn slicing_stands_down_under_metered_fuel() {
    let src = fixture("case_studies/list.javax");
    let metered = |slicing: bool| -> jahob::VerifyReport {
        run(
            &src,
            &Config::builder()
                .slicing(slicing)
                .dispatch(jahob::DispatchConfig {
                    slicing,
                    obligation_fuel: 200_000,
                    ..Default::default()
                })
                .build(),
        )
    };
    let plain = metered(false);
    let sliced = metered(true);
    assert_eq!(sliced.deterministic_lines(), plain.deterministic_lines());
    assert_eq!(stat(&sliced, "slice.applied"), 0);
}

// ---- the ladder at work --------------------------------------------------

/// A goal whose hypotheses are irrelevant *and contradictory*: `j <= k`,
/// `k + 1 <= j` against goal `y < 0`. The depth-1 cone keeps nothing —
/// the sliced rung is the bare (falsifiable) goal — so any counter-model
/// found there is spurious: it cannot falsify the full sequent, whose
/// hypotheses are unsatisfiable. The ladder must widen to the full rung
/// and prove; `REFUTED` here would be a soundness bug.
#[test]
fn spurious_counter_models_widen_and_never_refute() {
    let src = r#"
class Spur {
  public static void vacuous(int j, int k, int y)
  /*: requires "j <= k & k + 1 <= j" ensures "y < 0" */
  {
  }
}
"#;
    let plain = run(src, &Config::builder().build());
    assert!(plain.all_proved(), "fixture must verify without slicing");
    let sliced = run(src, &Config::builder().slicing(true).build());
    assert!(
        sliced.all_proved(),
        "a spurious slice counter-model leaked into the verdict:\n{}",
        sliced.deterministic_lines().join("\n")
    );
    assert!(stat(&sliced, "slice.applied") >= 1, "ladder never engaged");
    assert!(
        stat(&sliced, "slice.widened") >= 1,
        "the bare goal is falsifiable; the ladder must have widened"
    );
}

/// Slicing engages on the case-study corpus and actually drops
/// hypotheses (the stats are stable, so exact counts are pinned by the
/// determinism tests above; here we only require the feature is live).
#[test]
fn slicing_engages_on_the_corpus() {
    let mut applied = 0;
    for path in CASE_STUDIES {
        let report = run(&fixture(path), &Config::builder().slicing(true).build());
        applied += stat(&report, "slice.applied");
    }
    assert!(
        applied > 0,
        "relevance slicing never engaged on any case study"
    );
}

// ---- cache collapse ------------------------------------------------------

/// Two methods whose proof obligations differ only in an irrelevant
/// hypothesis: without slicing they are distinct cache entries; with
/// slicing the depth-1 rung of both normalizes to the same formula, so
/// the second lookup hits.
#[test]
fn sliced_rungs_collapse_in_the_goal_cache() {
    let src = r#"
class Twins {
  public static void first(int x, int a)
  /*: requires "0 <= x & a = 7" ensures "0 <= x + x" */
  {
  }
  public static void second(int x, int b)
  /*: requires "0 <= x & b = 9" ensures "0 <= x + x" */
  {
  }
}
"#;
    let report = |slicing: bool| run(src, &Config::builder().slicing(slicing).build());
    let plain = report(false);
    let sliced = report(true);
    assert!(plain.all_proved() && sliced.all_proved());
    assert!(
        stat(&sliced, "cache.hit") > stat(&plain, "cache.hit"),
        "sliced rungs of obligations differing only in irrelevant \
         hypotheses must share a cache entry (plain hits: {}, sliced hits: {})",
        stat(&plain, "cache.hit"),
        stat(&sliced, "cache.hit")
    );
}

// ---- config plumbing -----------------------------------------------------

#[test]
fn env_flag_and_builder_agree() {
    // The builder's explicit setting wins; the env var is only a
    // default. (Direct env-var coverage lives in the CLI tests — mutating
    // the process environment in a parallel test binary is UB-adjacent.)
    assert!(!Config::builder().build().dispatch.slicing);
    assert!(Config::builder().slicing(true).build().dispatch.slicing);
    assert!(!Config::builder().slicing(false).build().dispatch.slicing);
}
