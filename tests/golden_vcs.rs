//! Golden corpus for VC generation: the cache-canonical (normalized) form
//! of every obligation in every case study, snapshotted under
//! `tests/golden/`.
//!
//! The goal cache keys on exactly this normalization, so any change to VC
//! generation *or* to cache-key normalization shows up here as a
//! reviewable diff instead of a silent cache invalidation (or, worse, a
//! silent collision). Regenerate intentionally with:
//!
//! ```text
//! JAHOB_BLESS=1 cargo test --test golden_vcs
//! ```

use jahob_repro::jahob::normalize;
use jahob_repro::javalite::{parse_program, resolve};
use jahob_repro::vcgen::method_obligations;
use std::fmt::Write as _;
use std::path::Path;

const CASE_STUDIES: [&str; 5] = [
    "case_studies/list.javax",
    "case_studies/client.javax",
    "case_studies/assoclist.javax",
    "case_studies/globalset.javax",
    "case_studies/game.javax",
];

/// Render one case study's obligations in cache-canonical form. Fresh
/// havoc/snapshot symbols are normalized to first-occurrence indices, so
/// the text is identical regardless of test ordering or thread count.
fn corpus(path: &str) -> String {
    let src = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("{path}: {e}"));
    let program = parse_program(&src).unwrap_or_else(|e| panic!("{path}: parse: {e}"));
    let typed = resolve(&program).unwrap_or_else(|e| panic!("{path}: resolve: {e}"));
    let mut out = String::new();
    for class in &typed.classes {
        for m in &class.methods {
            if m.contract.assumed {
                continue;
            }
            let mv = method_obligations(&typed, m)
                .unwrap_or_else(|e| panic!("{path}: vcgen {}.{}: {e}", m.class, m.name));
            for ob in &mv.obligations {
                writeln!(out, "== {}.{} :: {}", mv.class, mv.method, ob.label).unwrap();
                writeln!(out, "{}", normalize(&ob.form).form).unwrap();
                out.push('\n');
            }
        }
    }
    out
}

fn golden_path(study: &str) -> String {
    let stem = Path::new(study)
        .file_stem()
        .and_then(|s| s.to_str())
        .expect("case study path has a stem");
    format!("tests/golden/{stem}.txt")
}

#[test]
fn normalized_obligations_match_the_golden_corpus() {
    let bless = std::env::var("JAHOB_BLESS").is_ok_and(|v| v == "1");
    let mut stale = Vec::new();
    for study in CASE_STUDIES {
        let got = corpus(study);
        let golden = golden_path(study);
        if bless {
            std::fs::create_dir_all("tests/golden").expect("mkdir tests/golden");
            std::fs::write(&golden, &got).unwrap_or_else(|e| panic!("{golden}: {e}"));
            continue;
        }
        let want = std::fs::read_to_string(&golden).unwrap_or_else(|e| {
            panic!(
                "{golden}: {e}\nhint: regenerate with JAHOB_BLESS=1 cargo test --test golden_vcs"
            )
        });
        if got != want {
            // Report the first diverging line so a CI failure is readable
            // without downloading artifacts.
            let first_diff = got
                .lines()
                .zip(want.lines())
                .position(|(g, w)| g != w)
                .unwrap_or_else(|| got.lines().count().min(want.lines().count()));
            stale.push(format!(
                "{golden}: first divergence at line {} (got {:?}, want {:?})",
                first_diff + 1,
                got.lines().nth(first_diff).unwrap_or("<eof>"),
                want.lines().nth(first_diff).unwrap_or("<eof>"),
            ));
        }
    }
    assert!(
        stale.is_empty(),
        "normalized VCs diverged from the golden corpus — if intentional, \
         re-bless with JAHOB_BLESS=1 cargo test --test golden_vcs\n{}",
        stale.join("\n")
    );
}

/// The corpus itself is stable under regeneration: two generations in one
/// process (different global fresh-counter offsets) print identically.
/// This is the property that makes the golden files meaningful at all.
#[test]
fn corpus_generation_is_idempotent() {
    for study in CASE_STUDIES {
        assert_eq!(
            corpus(study),
            corpus(study),
            "{study}: normalization failed to cancel fresh-counter drift"
        );
    }
}
