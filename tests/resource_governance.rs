//! Resource-governance integration tests (tentpole acceptance criteria):
//!
//! * a pathological obligation under a 1-second obligation deadline
//!   completes promptly with a *diagnosed* `Unknown` while sibling
//!   obligations on the same dispatcher still verify,
//! * an injected panic in a single prover is isolated — the rest of the
//!   verification run completes and the panic shows up in the failure
//!   taxonomy instead of crashing the pipeline,
//! * enabling the deadline does not perturb runs that fit comfortably
//!   inside it.

use jahob_repro::jahob::verify::VerdictSummary;
use jahob_repro::jahob::{
    Config, Dispatcher, FailureReason, Fault, FaultPlan, ProverId, Verdict, Verifier,
};
use jahob_repro::logic::{form, Sort};
use jahob_repro::util::{FxHashMap, Symbol};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn dispatcher() -> Dispatcher {
    let mut sig: FxHashMap<Symbol, Sort> = FxHashMap::default();
    for (n, s) in [
        ("S", Sort::objset()),
        ("T", Sort::objset()),
        ("i", Sort::Int),
        ("j", Sort::Int),
    ] {
        sig.insert(Symbol::intern(n), s);
    }
    sig.insert(Symbol::intern("Object.alloc"), Sort::objset());
    Dispatcher::new(sig, FxHashMap::default())
}

#[test]
fn pathological_obligation_times_out_with_diagnosis() {
    let mut d = dispatcher();
    d.config.obligation_timeout = Some(Duration::from_secs(1));
    // Deep ∀∃ alternation with coprime coefficients: Cooper elimination is
    // doubly exponential here, so the ungoverned portfolio would churn for
    // a very long time. The obligation deadline must cut it short.
    let pathological = form(
        "ALL a. EX b. ALL c. EX d. ALL e. EX f1. ALL g1. EX h1. \
         30 * b + 42 * d + 70 * f1 + 105 * h1 = a + c + e + g1 + 1",
    );
    let start = Instant::now();
    let v = d.prove(&pathological);
    let elapsed = start.elapsed();
    // Generous slack over the 1 s deadline: budget polling is cooperative,
    // but it must fire within the same order of magnitude.
    assert!(
        elapsed < Duration::from_secs(30),
        "deadline did not cut dispatch short: took {elapsed:?}"
    );
    match v {
        Verdict::Unknown(diag) => {
            let timed_out = diag
                .attempts
                .iter()
                .any(|(_, r)| *r == FailureReason::Timeout)
                || diag.obligation_spent == Some(FailureReason::Timeout);
            assert!(timed_out, "no timeout in diagnosis: {diag}");
        }
        other => panic!("expected diagnosed unknown, got {other:?}"),
    }
    // Sibling obligations on the same dispatcher still verify: each
    // obligation gets a fresh budget, so one blown deadline does not
    // poison the rest of the run.
    assert!(d.prove(&form("i < j --> i + 1 <= j")).is_proved());
    assert!(d.prove(&form("S Int T <= S")).is_proved());
}

const COUNTER_SRC: &str = r#"
class Counter {
  /*: public static specvar g :: int; */
  public static void bump(int limit)
  /*: requires "0 <= g & g <= limit" modifies g ensures "g <= limit + 1" */
  {
    //: g := "g + 1";
  }
}
"#;

#[test]
fn injected_panic_does_not_poison_verification() {
    let mut config = Config::default();
    config.dispatch.fault_plan = Some(Arc::new(FaultPlan::quiet().inject(
        ProverId::Lia.site(),
        0..u64::MAX,
        Fault::Panic,
    )));
    // The whole pipeline completes despite the panicking prover …
    let report = Verifier::new(config).verify(COUNTER_SRC).unwrap();
    assert!(!report.methods.is_empty());
    // … and every obligation still gets a verdict: either another prover
    // picked up the slack, or the Unknown carries the panic (or the
    // circuit breaker's skip, once the panic streak opened it) in its
    // diagnosis — it is never silently dropped.
    for m in &report.methods {
        for o in &m.obligations {
            if let VerdictSummary::Unknown(diag) = &o.verdict {
                assert!(
                    diag.attempts.iter().any(|(p, r)| *p == ProverId::Lia
                        && matches!(r, FailureReason::Panicked | FailureReason::CircuitOpen)),
                    "undiagnosed unknown: {diag}"
                );
            }
        }
    }
}

#[test]
fn deadline_does_not_perturb_easy_runs() {
    let mut config = Config::default();
    config.dispatch.obligation_timeout = Some(Duration::from_secs(1));
    let report = Verifier::new(config).verify(COUNTER_SRC).unwrap();
    assert!(report.all_proved(), "{report}");
}
