//! The structured observability pipeline (ISSUE 4).
//!
//! Three pins on the event stream a `Verifier` run emits:
//!
//! * **Golden JSONL.** The deterministic serialization of a full run over
//!   `list.javax` — plain and under a seeded chaos plan — is snapshotted
//!   under `tests/golden/` and must be reproduced bit-for-bit at 1, 2,
//!   and 8 workers. Regenerate intentionally with:
//!
//!   ```text
//!   JAHOB_BLESS=1 cargo test --test observability
//!   ```
//!
//! * **Span nesting.** The stream is well-formed: one run span bracketing
//!   everything, method spans in submission order, obligation spans inside
//!   their method, piece spans inside their obligation, never nested.
//!
//! * **Counter agreement.** Rebuilding the stats counters from the event
//!   stream (`obs::event_tallies`, the same `Event::stat_increments`
//!   mapping the dispatcher feeds its live counters through) reproduces
//!   the report's stats map exactly on every event-backed counter group.

use jahob_repro::jahob::{self, Config, Event, FaultPlan, MemorySink};
use jahob_repro::util::obs;
use std::sync::Arc;

const WORKER_MATRIX: [usize; 3] = [1, 2, 8];

/// The chaos configuration `parallel_determinism.rs::chaos_runs_agree`
/// uses: seeded plan, watchdog on, tight fuel so governance paths fire.
fn chaos_dispatch(seed: u64) -> jahob::DispatchConfig {
    jahob::DispatchConfig {
        fault_plan: Some(Arc::new(FaultPlan::from_seed(seed))),
        cross_check: true,
        obligation_fuel: 150_000,
        bmc_bound: 2,
        bmc_as_validity: false,
        ..Default::default()
    }
}

/// Run `src` at `workers`, returning the captured run (events + report).
fn run(src: &str, workers: usize, chaos: bool) -> (Vec<Event>, jahob::VerifyReport) {
    let sink = Arc::new(MemorySink::new());
    let mut builder = Config::builder().workers(workers).sink(sink.clone());
    if chaos {
        builder = builder.dispatch(chaos_dispatch(11));
    }
    let report = builder.build_verifier().verify(src).expect("pipeline");
    // Under `JAHOB_ISOLATION=process` the supervisor's monitor threads
    // write lane-lifecycle events straight into the sink; their presence
    // is schedule-dependent by design, so the deterministic pins below
    // compare the canonical stream without them.
    let events = sink
        .events()
        .into_iter()
        .filter(|ev| !ev.is_schedule_dependent())
        .collect();
    (events, report)
}

fn jsonl(events: &[Event]) -> String {
    let mut out = String::new();
    for ev in events {
        out.push_str(&ev.to_json(false));
        out.push('\n');
    }
    out
}

#[test]
fn golden_event_stream_at_every_worker_count() {
    let bless = std::env::var("JAHOB_BLESS").is_ok_and(|v| v == "1");
    let src = std::fs::read_to_string("case_studies/list.javax").expect("case study");
    let mut stale = Vec::new();
    for (golden, chaos) in [
        ("tests/golden/obs_list.jsonl", false),
        ("tests/golden/obs_list_chaos.jsonl", true),
    ] {
        let baseline = jsonl(&run(&src, 1, chaos).0);
        // Bit-for-bit identical at any worker count, *then* golden.
        for workers in WORKER_MATRIX {
            assert_eq!(
                jsonl(&run(&src, workers, chaos).0),
                baseline,
                "event stream at {workers} workers diverged (chaos: {chaos})"
            );
        }
        if bless {
            std::fs::create_dir_all("tests/golden").expect("mkdir tests/golden");
            std::fs::write(golden, &baseline).unwrap_or_else(|e| panic!("{golden}: {e}"));
            continue;
        }
        let want = std::fs::read_to_string(golden).unwrap_or_else(|e| {
            panic!(
                "{golden}: {e}\nhint: regenerate with JAHOB_BLESS=1 cargo test --test observability"
            )
        });
        if baseline != want {
            let first_diff = baseline
                .lines()
                .zip(want.lines())
                .position(|(g, w)| g != w)
                .unwrap_or_else(|| baseline.lines().count().min(want.lines().count()));
            stale.push(format!(
                "{golden}: first divergence at line {} (got {:?}, want {:?})",
                first_diff + 1,
                baseline.lines().nth(first_diff).unwrap_or("<eof>"),
                want.lines().nth(first_diff).unwrap_or("<eof>"),
            ));
        }
    }
    assert!(
        stale.is_empty(),
        "event streams diverged from the golden JSONL — if intentional, \
         re-bless with JAHOB_BLESS=1 cargo test --test observability\n{}",
        stale.join("\n")
    );
}

#[test]
fn spans_nest_and_methods_arrive_in_submission_order() {
    let src = std::fs::read_to_string("case_studies/list.javax").expect("case study");
    let (events, report) = run(&src, 2, false);

    assert!(matches!(events.first(), Some(Event::RunStart { .. })));
    assert!(matches!(events.last(), Some(Event::RunEnd { .. })));

    let mut open_method: Option<u64> = None;
    let mut open_obligation: Option<u64> = None;
    let mut piece_open = false;
    let mut next_method = 0u64;
    let mut methods_seen = 0usize;
    let mut obligations_seen = 0usize;
    for (i, ev) in events.iter().enumerate() {
        match ev {
            Event::RunStart { .. } => assert_eq!(i, 0, "run.start only opens the stream"),
            Event::RunEnd { .. } => {
                assert_eq!(i, events.len() - 1, "run.end only closes the stream");
                assert!(open_method.is_none(), "run.end with a method span open");
            }
            Event::MethodStart { index, .. } => {
                assert!(open_method.is_none(), "method spans must not nest");
                assert_eq!(*index, next_method, "methods arrive in submission order");
                open_method = Some(*index);
                next_method += 1;
                methods_seen += 1;
            }
            Event::MethodEnd { index, .. } => {
                assert_eq!(
                    open_method.take(),
                    Some(*index),
                    "method.end pairs its start"
                );
                assert!(
                    open_obligation.is_none(),
                    "obligation span leaked past its method"
                );
            }
            Event::ObligationStart { index, .. } => {
                assert!(open_method.is_some(), "obligation outside a method span");
                assert!(open_obligation.is_none(), "obligation spans must not nest");
                open_obligation = Some(*index);
                obligations_seen += 1;
            }
            Event::ObligationEnd { index, .. } => {
                assert_eq!(open_obligation.take(), Some(*index));
                assert!(!piece_open, "piece span leaked past its obligation");
            }
            Event::PieceStart { .. } => {
                assert!(
                    open_obligation.is_some(),
                    "piece outside an obligation span"
                );
                assert!(!piece_open, "piece spans must not nest");
                piece_open = true;
            }
            Event::PieceEnd { .. } => {
                assert!(piece_open, "piece.end without piece.start");
                piece_open = false;
            }
            _ => {}
        }
    }
    assert_eq!(methods_seen, report.methods.len());
    let total_obligations: usize = report.methods.iter().map(|m| m.obligations.len()).sum();
    assert_eq!(obligations_seen, total_obligations);
}

#[test]
fn event_stream_and_report_stats_agree() {
    let src = std::fs::read_to_string("case_studies/list.javax").expect("case study");
    for chaos in [false, true] {
        let (events, report) = run(&src, 2, chaos);
        let tallies = obs::event_tallies(&events);
        // Every counter the stream implies is in the report, exactly.
        for (name, value) in &tallies {
            assert_eq!(
                report.stats.get(name),
                Some(value),
                "stat {name} disagrees with the event stream (chaos: {chaos})"
            );
        }
        // And the converse: every event-backed stat group in the report is
        // fully explained by the stream — nothing bumps those counters
        // outside the event path anymore.
        for group in [
            "cache.",
            "breaker.",
            "retry.",
            "watchdog.",
            "chaos.",
            "failure.",
        ] {
            for (name, value) in &report.stats {
                if !name.starts_with(group) {
                    continue;
                }
                assert_eq!(
                    tallies.get(name),
                    Some(value),
                    "stat {name} has no event backing (chaos: {chaos})"
                );
            }
        }
        assert!(
            tallies.keys().any(|k| k.starts_with("cache.")) || chaos,
            "a cached plain run must consult the cache"
        );
    }
}
